/**
 * @file
 * Tests for the sharded serving router (serve/router.h): the
 * prefix-affinity routing function, ShardedFrontEnd driven through the
 * abstract ServingClient surface, and the canonical invariant extended
 * to sharding — every completed stream is bit-identical to a
 * single-engine golden run in every format, including under forced
 * re-routing (retireShard), racing submits/cancels, per-shard chaos
 * injection — and now fleet health: crash failover without drain
 * (failShard), heartbeat detection on a virtual clock (superviseOnce),
 * shard-level chaos (wedge/death/slow) with supervised recovery, and
 * the bounded-wait guarantee that no producer can hang on a wedged
 * shard.
 *
 * Failing chaos episodes write chaos_failure_router_<fmt>_<seed>.txt
 * (seed, per-shard fault schedules, repro command) into the working
 * directory; CI uploads them. MXPLUS_CHAOS_SEED / MXPLUS_CHAOS_SEEDS
 * narrow/widen the seed sweep exactly like tests/test_chaos.cpp.
 *
 * This file runs under the ThreadSanitizer CI job (labels
 * `router;serving`), so the router's accept-guard, re-route hand-off,
 * failover ownership protocol and fleet-stats merge are all TSan
 * proof obligations too.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/async_engine.h"
#include "serve/health.h"
#include "serve/router.h"
#include "serve/serving_client.h"
#include "serve/serving_engine.h"

namespace mxplus {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig cfg = simLlama31_8b();
    cfg.n_layers = 2;
    return cfg;
}

std::vector<int>
tokenRamp(size_t n, int stride)
{
    std::vector<int> t(n);
    for (size_t i = 0; i < n; ++i)
        t[i] = static_cast<int>((7 + i * stride) % 251);
    return t;
}

/** Varied standalone requests (distinct prompts, lengths, answers). */
std::vector<ServeRequest>
makeRequests(size_t n)
{
    std::vector<ServeRequest> reqs(n);
    for (size_t i = 0; i < n; ++i) {
        reqs[i].prompt = tokenRamp(8 + 5 * (i % 4), static_cast<int>(3 + i));
        reqs[i].max_new_tokens = 4 + (i % 3) * 3;
    }
    return reqs;
}

/** @p groups families of @p per requests sharing a @p head_pages-page
    system prompt per family — the workload prefix affinity exists
    for. */
std::vector<ServeRequest>
makeSharedPrefixRequests(size_t groups, size_t per, size_t page_tokens,
                         size_t head_pages)
{
    std::vector<ServeRequest> reqs;
    for (size_t g = 0; g < groups; ++g) {
        const std::vector<int> head =
            tokenRamp(head_pages * page_tokens, static_cast<int>(3 + g));
        for (size_t i = 0; i < per; ++i) {
            ServeRequest r;
            r.prompt = head;
            const std::vector<int> tail =
                tokenRamp(5 + 3 * i, static_cast<int>(31 + g * per + i));
            r.prompt.insert(r.prompt.end(), tail.begin(), tail.end());
            r.max_new_tokens = 6 + (i % 3) * 4;
            reqs.push_back(std::move(r));
        }
    }
    return reqs;
}

/** Drive @p reqs through any ServingClient: submit all, drain, return
    final per-request stats copies in submission order. */
std::vector<RequestStats>
runThroughClient(ServingClient &client, const std::vector<ServeRequest> &reqs)
{
    std::vector<uint64_t> tickets;
    tickets.reserve(reqs.size());
    for (const auto &r : reqs)
        tickets.push_back(client.submit(r));
    client.drain();
    std::vector<RequestStats> out;
    out.reserve(reqs.size());
    for (uint64_t t : tickets)
        out.push_back(client.stats(t));
    return out;
}

const char *const kFormats[] = {"BF16", "MXFP8", "MXFP4+"};

// -------------------------------------------------------- routing policy --

TEST(Router, AffinityShardIsAPureFunctionOfPrefixPages)
{
    const size_t pt = 32;
    const std::vector<int> head = tokenRamp(2 * pt, 3);

    // Same leading pages, different tails: identical shard — the whole
    // point of the affinity key is that a family sharing a system
    // prompt lands together.
    std::vector<int> a = head;
    std::vector<int> b = head;
    const auto ta = tokenRamp(9, 17);
    const auto tb = tokenRamp(13, 23);
    a.insert(a.end(), ta.begin(), ta.end());
    b.insert(b.end(), tb.begin(), tb.end());
    for (size_t shards = 1; shards <= 8; ++shards) {
        EXPECT_EQ(affinityShard(a, pt, 4, shards),
                  affinityShard(b, pt, 4, shards));
        // Pure function: repeated evaluation never drifts.
        EXPECT_EQ(affinityShard(a, pt, 4, shards),
                  affinityShard(a, pt, 4, shards));
        EXPECT_LT(affinityShard(a, pt, 4, shards), shards);
    }

    // A differing FIRST page must be able to separate families (with
    // 64 distinct heads and 8 shards, a constant hash would pin all of
    // them to one shard).
    bool separated = false;
    const size_t base = affinityShard(tokenRamp(2 * pt, 100), pt, 4, 8);
    for (int s = 101; s < 164 && !separated; ++s)
        separated = affinityShard(tokenRamp(2 * pt, s), pt, 4, 8) != base;
    EXPECT_TRUE(separated);

    // Sub-page prompts hash in full rather than all colliding at 0
    // pages.
    const std::vector<int> shorty = tokenRamp(7, 3);
    EXPECT_EQ(affinityShard(shorty, pt, 4, 8),
              affinityShard(shorty, pt, 4, 8));
}

// ----------------------------------- single shard == AsyncFrontEnd, per format

TEST(Router, SingleShardBitEqualsAsyncFrontEndEveryFormat)
{
    const Transformer model(tinyConfig());
    const auto reqs = makeRequests(10);

    for (const char *fmt : kFormats) {
        SCOPED_TRACE(fmt);
        const QuantConfig qc = QuantConfig::fromFormat(fmt);
        EngineOptions opts;
        opts.max_batch = 3;

        AsyncFrontEnd async_fe(model, qc, opts);
        RouterOptions router;
        router.num_shards = 1;
        ShardedFrontEnd sharded_fe(model, qc, opts, router);

        // Both front ends speak ServingClient — the redesigned API is
        // exercised exactly as a client library would use it.
        const auto a = runThroughClient(async_fe, reqs);
        const auto s = runThroughClient(sharded_fe, reqs);

        ASSERT_EQ(a.size(), s.size());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].outcome, RequestOutcome::kCompleted);
            EXPECT_EQ(s[i].outcome, RequestOutcome::kCompleted);
            EXPECT_EQ(a[i].generated, s[i].generated) << "req " << i;
        }
        EXPECT_TRUE(sharded_fe.auditInvariants());
        EXPECT_EQ(sharded_fe.shardEngine(0).kvBytesLive(), 0u);
        EXPECT_EQ(sharded_fe.engineStats().total_generated,
                  async_fe.engineStats().total_generated);
        EXPECT_DOUBLE_EQ(sharded_fe.engineStats().goodput_ok_fraction, 1.0);
    }
}

// ------------------------------------- 4 shards == single golden, per format

TEST(Router, FourShardStreamsBitEqualGoldenEveryFormat)
{
    const Transformer model(tinyConfig());
    constexpr size_t kProducers = 4;

    for (const char *fmt : kFormats) {
        SCOPED_TRACE(fmt);
        const QuantConfig qc = QuantConfig::fromFormat(fmt);
        EngineOptions opts;
        opts.max_batch = 3;
        opts.prefix_cache_tokens = 512; // affinity has something to win

        RouterOptions router;
        router.num_shards = 4;
        ShardedFrontEnd fe(model, qc, opts, router);
        const auto reqs = makeSharedPrefixRequests(/*groups=*/4, /*per=*/3,
                                                   fe.pageTokens(),
                                                   /*head_pages=*/2);

        // Golden: one synchronous engine, same requests, index order.
        ServingEngine golden(model, qc, opts);
        std::vector<size_t> gids;
        for (const auto &r : reqs)
            gids.push_back(golden.submit(r));
        golden.runToCompletion();

        // Sharded: producer threads race disjoint slices in, so
        // arrival order, shard placement and batching all differ from
        // the golden run.
        std::vector<uint64_t> tickets(reqs.size());
        std::vector<std::thread> producers;
        for (size_t p = 0; p < kProducers; ++p) {
            producers.emplace_back([&, p] {
                for (size_t i = p; i < reqs.size(); i += kProducers)
                    tickets[i] = fe.submit(reqs[i]);
            });
        }
        for (auto &t : producers)
            t.join();
        fe.drain();

        size_t golden_total = 0;
        for (size_t i = 0; i < reqs.size(); ++i) {
            const RequestStats &s = fe.stats(tickets[i]);
            const RequestStats &g = golden.stats(gids[i]);
            EXPECT_EQ(s.outcome, RequestOutcome::kCompleted);
            ASSERT_EQ(s.generated, g.generated) << "req " << i;
            golden_total += g.generated.size();
        }

        // Fleet view: per-ticket truth for outcomes/goodput, shards
        // idle and clean underneath.
        const EngineStats &fleet = fe.engineStats();
        EXPECT_EQ(fleet.total_generated, golden_total);
        EXPECT_DOUBLE_EQ(fleet.goodput_ok_fraction, 1.0);
        EXPECT_EQ(fleet.cancelled_requests, 0u);
        // With the prefix cache on, retained prefix pages legitimately
        // stay live after drain (test_serving clears the cache before
        // asserting zero); auditInvariants still proves every byte is
        // either a cached prefix or nothing.
        EXPECT_TRUE(fe.auditInvariants());
    }
}

// ---------------------------------------------------- forced re-routing --

TEST(Router, RetireShardReroutesBitExactly)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 2; // keeps shards busy long enough to catch mid-flight

    std::vector<ServeRequest> reqs(10);
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].prompt = tokenRamp(20 + 4 * (i % 3), static_cast<int>(3 + i));
        reqs[i].max_new_tokens = 32; // long: re-route lands mid-generation
    }

    ServingEngine golden(model, qc, opts);
    std::vector<size_t> gids;
    for (const auto &r : reqs)
        gids.push_back(golden.submit(r));
    golden.runToCompletion();

    RouterOptions router;
    router.num_shards = 4;
    ShardedFrontEnd fe(model, qc, opts, router);
    std::vector<uint64_t> tickets;
    for (const auto &r : reqs)
        tickets.push_back(fe.submit(r));

    // Force re-routing while generation is in flight: retire two of
    // the four shards back to back. Whatever each one held — ring
    // commands not yet mapped, queued admissions, half-generated
    // slots — must restart elsewhere and regenerate bit-identically.
    ASSERT_TRUE(fe.retireShard(0));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(fe.retireShard(1));
    EXPECT_TRUE(fe.shardRetired(0));
    EXPECT_TRUE(fe.shardRetired(1));
    EXPECT_EQ(fe.liveShards(), 2u);
    // A retired shard refuses a second retirement; the last live
    // shards refuse to die.
    EXPECT_FALSE(fe.retireShard(0));
    ASSERT_TRUE(fe.retireShard(2));
    EXPECT_FALSE(fe.retireShard(3)); // someone must keep serving
    EXPECT_EQ(fe.liveShards(), 1u);

    fe.drain();
    for (size_t i = 0; i < reqs.size(); ++i) {
        const RequestStats &s = fe.stats(tickets[i]);
        EXPECT_EQ(s.outcome, RequestOutcome::kCompleted) << "req " << i;
        ASSERT_EQ(s.generated, golden.stats(gids[i]).generated)
            << "req " << i;
    }

    // Ticket truth: nobody cancelled anything — the engine-level
    // cancels a re-route performs are an implementation detail and
    // must NOT surface in fleet outcome accounting.
    const EngineStats &fleet = fe.engineStats();
    EXPECT_EQ(fleet.cancelled_requests, 0u);
    EXPECT_DOUBLE_EQ(fleet.goodput_ok_fraction, 1.0);
    EXPECT_TRUE(fe.auditInvariants());
    for (size_t sdx = 0; sdx < fe.numShards(); ++sdx)
        EXPECT_EQ(fe.shardEngine(sdx).kvBytesLive(), 0u) << "shard " << sdx;
}

TEST(Router, SubmitDuringShardDrainNeverLosesRequests)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP8");
    EngineOptions opts;
    opts.max_batch = 2;

    const auto reqs = makeRequests(16);
    ServingEngine golden(model, qc, opts);
    std::vector<size_t> gids;
    for (const auto &r : reqs)
        gids.push_back(golden.submit(r));
    golden.runToCompletion();

    RouterOptions router;
    router.num_shards = 3;
    ShardedFrontEnd fe(model, qc, opts, router);

    // Producers submit WHILE two shards retire: some submits hit the
    // sealed shard's accept-guard between pick and push and must
    // re-pick; some land in a retiring ring and must re-route.
    std::vector<uint64_t> tickets(reqs.size());
    std::atomic<bool> go{false};
    std::vector<std::thread> producers;
    for (size_t p = 0; p < 2; ++p) {
        producers.emplace_back([&, p] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            for (size_t i = p; i < reqs.size(); i += 2)
                tickets[i] = fe.submit(reqs[i]);
        });
    }
    go.store(true, std::memory_order_release);
    ASSERT_TRUE(fe.retireShard(1));
    ASSERT_TRUE(fe.retireShard(2));
    for (auto &t : producers)
        t.join();
    fe.drain();

    for (size_t i = 0; i < reqs.size(); ++i) {
        const RequestStats &s = fe.stats(tickets[i]);
        EXPECT_EQ(s.outcome, RequestOutcome::kCompleted) << "req " << i;
        ASSERT_EQ(s.generated, golden.stats(gids[i]).generated)
            << "req " << i;
    }
    EXPECT_DOUBLE_EQ(fe.engineStats().goodput_ok_fraction, 1.0);
    EXPECT_TRUE(fe.auditInvariants());
}

// ---------------------------------------------- cancel racing re-route --

TEST(Router, CancelRacingRerouteDeliversPrefixAndCountsOnce)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 2;

    ServeRequest base;
    base.prompt = tokenRamp(24, 5);
    base.max_new_tokens = 24;
    ServingEngine golden(model, qc, opts);
    const size_t gid = golden.submit(base);
    golden.runToCompletion();
    const std::vector<int> full = golden.stats(gid).generated;
    ASSERT_EQ(full.size(), base.max_new_tokens);

    RouterOptions router;
    router.num_shards = 3;
    ShardedFrontEnd fe(model, qc, opts, router);
    constexpr size_t kCopies = 9;
    std::vector<uint64_t> tickets;
    for (size_t i = 0; i < kCopies; ++i)
        tickets.push_back(fe.submit(base));

    // Three-way race: cancels target every third copy while a shard
    // retires underneath them — a cancel's wake-up may chase a ticket
    // across the re-route, and the flag must land regardless.
    std::thread retirer([&] { fe.retireShard(0); });
    std::thread canceller([&] {
        for (size_t i = 0; i < kCopies; i += 3)
            fe.cancel(tickets[i]);
    });
    retirer.join();
    canceller.join();
    fe.drain();

    size_t cancelled = 0;
    for (size_t i = 0; i < kCopies; ++i) {
        const RequestStats &rs = fe.stats(tickets[i]);
        // Whatever the interleaving, the stream is a bit-exact prefix
        // of the uncancelled golden stream.
        ASSERT_LE(rs.generated.size(), full.size());
        for (size_t t = 0; t < rs.generated.size(); ++t)
            ASSERT_EQ(rs.generated[t], full[t]) << "copy " << i;
        if (rs.outcome == RequestOutcome::kCancelled) {
            ++cancelled;
        } else {
            EXPECT_EQ(rs.outcome, RequestOutcome::kCompleted);
            EXPECT_EQ(rs.generated.size(), full.size());
        }
    }
    // Fleet outcome accounting is per ticket: each cancel counts
    // exactly once even if its victim was mid-re-route, and re-route's
    // own engine-level cancels never inflate the number.
    const EngineStats &fleet = fe.engineStats();
    EXPECT_EQ(fleet.cancelled_requests, cancelled);
    EXPECT_DOUBLE_EQ(fleet.goodput_ok_fraction,
                     static_cast<double>(kCopies - cancelled) / kCopies);
    EXPECT_TRUE(fe.auditInvariants());
}

// ----------------------------------------------- fleet-level shedding --

TEST(Router, AllShardsAtQueueCapShedWithFleetAccounting)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 1;
    opts.queue_cap = 1; // every shard's queue saturates immediately

    RouterOptions router;
    router.num_shards = 2;
    ShardedFrontEnd fe(model, qc, opts, router);

    std::vector<ServeRequest> reqs(16);
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].prompt = tokenRamp(16 + (i % 5), static_cast<int>(3 + i));
        reqs[i].max_new_tokens = 12;
    }
    std::vector<uint64_t> tickets;
    for (const auto &r : reqs)
        tickets.push_back(fe.submit(r));
    fe.drain();

    size_t completed = 0;
    size_t shed = 0;
    for (uint64_t t : tickets) {
        const RequestOutcome o = fe.wait(t);
        if (o == RequestOutcome::kCompleted)
            ++completed;
        else if (o == RequestOutcome::kShed)
            ++shed;
        else
            FAIL() << "unexpected outcome " << outcomeName(o);
    }
    EXPECT_EQ(completed + shed, reqs.size());
    EXPECT_GT(shed, 0u) << "16 burst submits into 2x(1 slot + 1 queue) "
                           "must overflow";

    // The fleet ledger agrees with the per-ticket outcomes exactly.
    const EngineStats &fleet = fe.engineStats();
    EXPECT_EQ(fleet.shed_requests, shed);
    EXPECT_DOUBLE_EQ(fleet.goodput_ok_fraction,
                     static_cast<double>(completed) / reqs.size());
    // And with the sum over shard engines (no ticket shed twice).
    size_t shard_shed = 0;
    for (size_t s = 0; s < fe.numShards(); ++s)
        shard_shed += fe.shardStats(s).shed_requests;
    EXPECT_EQ(shard_shed, shed);
    EXPECT_TRUE(fe.auditInvariants());
}

// ------------------------------------------------- per-shard chaos --

TEST(Router, PerShardChaosKeepsStreamsBitExact)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");

    EngineOptions opts;
    opts.max_batch = 3;
    opts.kv_budget_tokens = 256;
    opts.over_admission = 1.5; // room for chaos preemptions to matter
    opts.prefix_cache_tokens = 256;

    std::vector<ServeRequest> reqs(12);
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].prompt = tokenRamp(20 + 6 * (i % 3), static_cast<int>(3 + i));
        reqs[i].max_new_tokens = 16;
    }

    // Golden: fault-free single engine.
    ServingEngine golden(model, qc, opts);
    std::vector<size_t> gids;
    for (const auto &r : reqs)
        gids.push_back(golden.submit(r));
    golden.runToCompletion();

    RouterOptions router;
    router.num_shards = 4;
    router.fault.seed = 42;
    router.fault.p_pool_exhausted = 0.10;
    router.fault.p_force_preempt = 0.20;
    router.fault.p_evict_storm = 0.05;
    router.fault.p_corrupt_page = 0.05;
    ShardedFrontEnd fe(model, qc, opts, router);

    // The satellite fix, observable: every shard owns a PRIVATE
    // injector seeded base + shard_id, so chaos schedules are a pure
    // function of (seed, shard, step) no matter how threads interleave.
    for (size_t s = 0; s < fe.numShards(); ++s) {
        const FaultInjector *fi = fe.shardEngine(s).options().fault;
        ASSERT_NE(fi, nullptr) << "shard " << s;
        EXPECT_EQ(fi->config().seed, 42u + s);
        for (size_t other = 0; other < s; ++other)
            EXPECT_NE(fi, fe.shardEngine(other).options().fault);
    }

    std::vector<uint64_t> tickets;
    for (const auto &r : reqs)
        tickets.push_back(fe.submit(r));
    // Forced re-routing ON TOP of per-shard chaos: the acceptance
    // bar's hardest combination.
    ASSERT_TRUE(fe.retireShard(2));
    fe.drain();

    for (size_t i = 0; i < reqs.size(); ++i) {
        const RequestStats &s = fe.stats(tickets[i]);
        EXPECT_EQ(s.outcome, RequestOutcome::kCompleted) << "req " << i;
        ASSERT_EQ(s.generated, golden.stats(gids[i]).generated)
            << "req " << i;
    }
    // Prefix cache is on here, so live KV bytes after drain are cache
    // retention, not a leak; auditInvariants covers the accounting.
    EXPECT_TRUE(fe.auditInvariants());
}

// ---------------------------------------------------- streaming surface --

TEST(Router, NextTokenStreamsTheExactFinalSequenceAcrossShards)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP8");
    EngineOptions opts;
    opts.max_batch = 2;
    RouterOptions router;
    router.num_shards = 3;
    ShardedFrontEnd fe(model, qc, opts, router);

    const auto reqs = makeRequests(6);
    std::vector<uint64_t> tickets;
    for (const auto &r : reqs)
        tickets.push_back(fe.submit(r));

    // Consume each stream token-by-token from its own thread while a
    // shard retires mid-stream: delivered sequence == final stats'
    // generated sequence, no gap, duplicate or reorder across the
    // re-route.
    std::vector<std::vector<int>> delivered(tickets.size());
    std::vector<std::thread> consumers;
    for (size_t i = 0; i < tickets.size(); ++i) {
        consumers.emplace_back([&, i] {
            int tok = 0;
            while (fe.nextToken(tickets[i], &tok))
                delivered[i].push_back(tok);
        });
    }
    fe.retireShard(1);
    for (auto &t : consumers)
        t.join();
    fe.drain();

    for (size_t i = 0; i < tickets.size(); ++i) {
        EXPECT_EQ(fe.wait(tickets[i]), RequestOutcome::kCompleted);
        EXPECT_EQ(delivered[i], fe.stats(tickets[i]).generated);
    }
}

// --------------------------------------------------- crash failover --

TEST(Router, FailShardReroutesWithoutDrainBitExactly)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 2;

    std::vector<ServeRequest> reqs(9);
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].prompt = tokenRamp(20 + 4 * (i % 3), static_cast<int>(3 + i));
        reqs[i].max_new_tokens = 32; // long: failover lands mid-generation
    }

    ServingEngine golden(model, qc, opts);
    std::vector<size_t> gids;
    for (const auto &r : reqs)
        gids.push_back(golden.submit(r));
    golden.runToCompletion();

    RouterOptions router;
    router.num_shards = 3;
    ShardedFrontEnd fe(model, qc, opts, router);
    std::vector<uint64_t> tickets;
    for (const auto &r : reqs)
        tickets.push_back(fe.submit(r));

    // Crash failover mid-flight: unlike retireShard there is NO
    // cooperative drain — the shard's ring and engine are abandoned
    // outright and every ticket it owned restarts from router-side
    // records. Back-to-back failures leave a single survivor.
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    ASSERT_TRUE(fe.failShard(0));
    EXPECT_TRUE(fe.shardFailed(0));
    EXPECT_TRUE(fe.shardRetired(0));
    EXPECT_FALSE(fe.failShard(0)); // already sealed
    ASSERT_TRUE(fe.failShard(1));
    EXPECT_FALSE(fe.failShard(2)); // someone must keep serving
    EXPECT_EQ(fe.liveShards(), 1u);

    fe.drain();
    for (size_t i = 0; i < reqs.size(); ++i) {
        const RequestStats &s = fe.stats(tickets[i]);
        EXPECT_EQ(s.outcome, RequestOutcome::kCompleted) << "req " << i;
        ASSERT_EQ(s.generated, golden.stats(gids[i]).generated)
            << "req " << i;
    }

    // Ticket truth survives the crashes: every request counts once,
    // completed, and the failover bookkeeping is visible.
    const EngineStats &fleet = fe.engineStats();
    EXPECT_EQ(fleet.cancelled_requests, 0u);
    EXPECT_DOUBLE_EQ(fleet.goodput_ok_fraction, 1.0);
    const FleetHealthStats hs = fe.healthStats();
    EXPECT_EQ(hs.failed_shards, 2u);
    EXPECT_EQ(hs.refused_submits, 0u);
    // The surviving fleet audits to zero; failed shards' engines are
    // abandoned and explicitly excluded.
    EXPECT_TRUE(fe.auditInvariants());
    EXPECT_EQ(fe.shardEngine(2).kvBytesLive(), 0u);
}

TEST(Router, SuperviseOnceDetectsAWedgeOnTheVirtualClock)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP8");
    EngineOptions opts;
    opts.max_batch = 2;

    // All requests share one prompt head, so prefix affinity pins the
    // whole workload to ONE shard (the spill threshold below never
    // trips). The other shards stay idle — and an idle shard is
    // busy=false-exempt, so it can never be falsely suspected no
    // matter how this test's threads are scheduled: only the busy,
    // wedge-destined shard can ever be declared dead.
    std::vector<ServeRequest> reqs(8);
    const auto head = tokenRamp(40, 3);
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].prompt = head;
        const auto tail = tokenRamp(4 + i, static_cast<int>(31 + i));
        reqs[i].prompt.insert(reqs[i].prompt.end(), tail.begin(),
                              tail.end());
        reqs[i].max_new_tokens = 12;
    }
    ServingEngine golden(model, qc, opts);
    std::vector<size_t> gids;
    for (const auto &r : reqs)
        gids.push_back(golden.submit(r));
    golden.runToCompletion();

    RouterOptions router;
    router.num_shards = 3;
    router.spill_threshold = 100.0; // affinity never spills
    router.heartbeat_timeout_ms = 50.0; // VIRTUAL ms (see below)
    router.health_tick_ms = 0.0; // no supervisor thread: the test ticks
    router.fault.seed = 7;
    router.fault.p_shard_wedge = 1.0; // wedges at the first busy poll
    router.max_crash_faults = 1;      // at most one real wedge fires
    ShardedFrontEnd fe(model, qc, opts, router);

    std::vector<uint64_t> tickets;
    for (const auto &r : reqs)
        tickets.push_back(fe.submit(r));

    // The supervisor role, on a clock this test owns: tick
    // superviseOnce with a virtual timestamp until the fleet drains.
    // The detector only ever sees these timestamps, so staleness — and
    // with it detection — is measured purely in virtual ms; the 1 ms
    // wall sleep per 10 virtual ms only paces the loop. auto_failover
    // then re-routes the wedged shard's tickets from inside our tick.
    std::atomic<bool> drained{false};
    std::thread ticker([&] {
        double vnow = 0.0;
        while (!drained.load(std::memory_order_acquire)) {
            fe.superviseOnce(vnow);
            vnow += 10.0;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });
    fe.drain();
    drained.store(true, std::memory_order_release);
    ticker.join();

    for (size_t i = 0; i < reqs.size(); ++i) {
        const RequestStats &s = fe.stats(tickets[i]);
        EXPECT_EQ(s.outcome, RequestOutcome::kCompleted) << "req " << i;
        ASSERT_EQ(s.generated, golden.stats(gids[i]).generated)
            << "req " << i;
    }
    const FleetHealthStats hs = fe.healthStats();
    EXPECT_GE(hs.dead_detected, 1u) << "wedged shard never detected";
    EXPECT_GE(hs.failed_shards, 1u); // auto_failover recovered it
    EXPECT_EQ(hs.refused_submits, 0u);
    EXPECT_GE(fe.liveShards(), 1u);
    EXPECT_DOUBLE_EQ(fe.engineStats().goodput_ok_fraction, 1.0);
    EXPECT_TRUE(fe.auditInvariants());
}

TEST(Router, HealthySlowFleetIsNeverFalselyFailed)
{
    // False-positive guard: a fleet that is merely SLOW (every step
    // sleeps) but progressing must never be declared dead, no matter
    // how aggressively the wall-clock supervisor ticks.
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 2;

    RouterOptions router;
    router.num_shards = 2;
    router.heartbeat_timeout_ms = 60000.0; // generous vs ~1ms steps
    router.health_tick_ms = 1.0;           // tick as hard as possible
    router.fault.seed = 11;
    router.fault.p_shard_slow = 1.0; // every step delayed
    router.fault.slow_sleep_ms = 1.0;
    ShardedFrontEnd fe(model, qc, opts, router);

    const auto reqs = makeRequests(8);
    const auto stats = runThroughClient(fe, reqs);
    for (const auto &s : stats)
        EXPECT_EQ(s.outcome, RequestOutcome::kCompleted);

    const FleetHealthStats hs = fe.healthStats();
    EXPECT_EQ(hs.dead_detected, 0u);
    EXPECT_EQ(hs.failed_shards, 0u);
    EXPECT_EQ(fe.liveShards(), 2u);
    EXPECT_EQ(fe.shardHealth(0), ShardHealth::kHealthy);
    EXPECT_EQ(fe.shardHealth(1), ShardHealth::kHealthy);
    EXPECT_TRUE(fe.auditInvariants());
}

// ----------------------------------------------- bounded-wait submission --

TEST(Router, ProducerNeverHangsOnWedgedShards)
{
    // The satellite regression: both shards wedge with tiny rings and
    // NO health monitor (nothing will ever recover them) — every
    // submit must still return within the bound, refused tickets must
    // be terminal kShed, and destruction must not hang.
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP8");
    EngineOptions opts;
    opts.max_batch = 2;

    RouterOptions router;
    router.num_shards = 2;
    router.ring_capacity = 2;
    router.policy = RoutePolicy::kRoundRobin;
    router.submit_timeout_ms = 150.0;
    router.fault.seed = 3;
    router.fault.p_shard_wedge = 1.0;
    router.max_crash_faults = 2; // BOTH shards may wedge
    ShardedFrontEnd fe(model, qc, opts, router);

    ServeRequest seedreq;
    seedreq.prompt = tokenRamp(16, 5);
    seedreq.max_new_tokens = 8;
    // Two tickets make both shards busy so their wedges fire, then a
    // short wait lets the wedges land.
    const uint64_t t0 = fe.submit(seedreq);
    const uint64_t t1 = fe.submit(seedreq);
    (void)t0;
    (void)t1;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Burst against the dead fleet. Per submit the wait is bounded by
    // submit_timeout_ms; the generous wall assertion below only guards
    // against the old unbounded spin (which would hang forever).
    constexpr size_t kBurst = 8;
    std::vector<uint64_t> tickets;
    std::vector<double> submit_ms;
    for (size_t i = 0; i < kBurst; ++i) {
        const auto begin = std::chrono::steady_clock::now();
        tickets.push_back(fe.submit(seedreq));
        submit_ms.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - begin)
                .count());
    }
    for (size_t i = 0; i < kBurst; ++i)
        EXPECT_LT(submit_ms[i], 10 * router.submit_timeout_ms)
            << "submit " << i << " exceeded the bound";

    // With both rings (capacity 2 each) frozen, the burst must
    // overflow: refusals happened, and each refused ticket is already
    // terminal kShed — wait() returns immediately instead of hanging
    // on a stream no shard will ever publish.
    const FleetHealthStats hs = fe.healthStats();
    EXPECT_GT(hs.refused_submits, 0u);
    size_t shed = 0;
    for (size_t i = 0; i < kBurst; ++i) {
        if (submit_ms[i] >= router.submit_timeout_ms) {
            EXPECT_EQ(fe.wait(tickets[i]), RequestOutcome::kShed);
            ++shed;
        }
    }
    EXPECT_EQ(shed, hs.refused_submits);

    // cancel() against the wedged fleet is bounded too (flag-only
    // fallback past the deadline).
    const auto cbegin = std::chrono::steady_clock::now();
    fe.cancel(tickets.back());
    const double cancel_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - cbegin)
            .count();
    EXPECT_LT(cancel_ms, 10 * router.submit_timeout_ms);
    // Destructor liveness: ~ShardedFrontEnd stops the wedged threads
    // (the wedge loop polls stop) — the test RETURNING is the proof.
}

// --------------------------------------- shard-level chaos episodes --

std::vector<uint64_t>
routerChaosSeeds()
{
    if (const char *one = std::getenv("MXPLUS_CHAOS_SEED"))
        return {std::strtoull(one, nullptr, 10)};
    if (const char *many = std::getenv("MXPLUS_CHAOS_SEEDS")) {
        std::vector<uint64_t> seeds;
        const std::string s(many);
        size_t pos = 0;
        while (pos < s.size()) {
            size_t next = s.find(',', pos);
            if (next == std::string::npos)
                next = s.size();
            if (next > pos) {
                seeds.push_back(std::strtoull(
                    s.substr(pos, next - pos).c_str(), nullptr, 10));
            }
            pos = next + 1;
        }
        if (!seeds.empty())
            return seeds;
    }
    return {1, 2, 3};
}

/** Repro artifact for a failed shard-chaos episode (CI uploads every
    chaos_failure_*.txt): seed, knobs, and each shard's exact fault
    schedule. */
void
writeRouterFailureArtifact(const ShardedFrontEnd &fe, const char *fmt,
                           uint64_t seed)
{
    std::string clean;
    for (const char *p = fmt; *p != '\0'; ++p)
        clean.push_back(*p == '+' ? 'p' : *p);
    std::ofstream out("chaos_failure_router_" + clean + "_" +
                      std::to_string(seed) + ".txt");
    out << "router shard-chaos episode FAILED\n"
        << "format: " << fmt << "\n"
        << "seed:   " << seed << "\n"
        << "repro:  MXPLUS_CHAOS_SEED=" << seed
        << " ./test_router --gtest_filter="
        << "'Router.ShardChaosFailoverKeepsStreamsBitExact'\n";
    const FleetHealthStats hs = fe.healthStats();
    out << "detections: " << hs.dead_detected
        << "  failovers: " << hs.failed_shards
        << "  reroutes: " << hs.failover_reroutes
        << "  refusals: " << hs.refused_submits << "\n";
    for (size_t s = 0; s < fe.numShards(); ++s) {
        out << "shard " << s << " ("
            << (fe.shardFailed(s) ? "failed"
                                  : fe.shardRetired(s) ? "retired"
                                                       : "live")
            << ") fault schedule (seed " << seed + s << "):\n"
            << fe.shardFaultSchedule(s) << "\n";
    }
}

/** One shard-chaos episode: all three shard-level fault sites armed on
    every shard, wall-clock supervision with auto-failover, streams
    checked bit-exact against a fault-free golden with exactly-once
    delivery through nextToken(). Returns shards crash-failed. */
size_t
runShardChaosEpisode(const Transformer &model, const char *fmt,
                     uint64_t seed)
{
    SCOPED_TRACE(std::string(fmt) + " seed " + std::to_string(seed));
    const bool failed_before = ::testing::Test::HasFailure();
    const QuantConfig qc = QuantConfig::fromFormat(fmt);

    EngineOptions opts;
    opts.max_batch = 2; // long busy window: crash sites get many draws

    std::vector<ServeRequest> reqs(12);
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].prompt = tokenRamp(18 + 5 * (i % 3), static_cast<int>(3 + i));
        reqs[i].max_new_tokens = 20;
        if (i % 4 == 1) {
            reqs[i].temperature = 0.8; // rng reseed must survive failover
            reqs[i].seed = 500 + i;
        }
    }

    ServingEngine golden(model, qc, opts);
    std::vector<size_t> gids;
    for (const auto &r : reqs)
        gids.push_back(golden.submit(r));
    golden.runToCompletion();

    RouterOptions router;
    router.num_shards = 4;
    router.fault.seed = seed;
    router.fault.p_shard_wedge = 0.05;
    router.fault.p_shard_death = 0.05;
    router.fault.p_shard_slow = 0.10;
    router.fault.slow_sleep_ms = 1.0;
    router.heartbeat_timeout_ms = 60.0; // wall: wedge/death detect fast
    router.degraded_after_ms = 15.0;    // slow shards route around
    router.health_tick_ms = 5.0;
    router.auto_failover = true;
    router.submit_timeout_ms = 30000.0; // refusal would mask a hang
    // max_crash_faults defaults to num_shards - 1: chaos may kill up
    // to three of the four shards, never the last.
    ShardedFrontEnd fe(model, qc, opts, router);

    std::vector<uint64_t> tickets;
    for (const auto &r : reqs)
        tickets.push_back(fe.submit(r));

    // Exactly-once delivery is asserted at the STREAM surface: each
    // consumer collects its ticket's tokens across any number of
    // wedges, deaths and failovers underneath.
    std::vector<std::vector<int>> delivered(tickets.size());
    std::vector<std::thread> consumers;
    for (size_t i = 0; i < tickets.size(); ++i) {
        consumers.emplace_back([&, i] {
            int tok = 0;
            while (fe.nextToken(tickets[i], &tok))
                delivered[i].push_back(tok);
        });
    }
    for (auto &t : consumers)
        t.join();
    fe.drain();

    for (size_t i = 0; i < reqs.size(); ++i) {
        const RequestStats &s = fe.stats(tickets[i]);
        // Nothing cancels and the submit timeout is generous, so every
        // ticket must complete — and bit-equal the fault-free golden,
        // delivered exactly once.
        EXPECT_EQ(s.outcome, RequestOutcome::kCompleted) << "req " << i;
        EXPECT_EQ(s.generated, golden.stats(gids[i]).generated)
            << "req " << i;
        EXPECT_EQ(delivered[i], s.generated) << "req " << i;
    }

    // Surviving-fleet closure: per-ticket ledger exact, detection and
    // failover counters consistent, survivors' pools at zero.
    const EngineStats &fleet = fe.engineStats();
    EXPECT_DOUBLE_EQ(fleet.goodput_ok_fraction, 1.0);
    EXPECT_EQ(fleet.cancelled_requests, 0u);
    const FleetHealthStats hs = fe.healthStats();
    EXPECT_EQ(hs.refused_submits, 0u);
    EXPECT_LE(hs.failed_shards, router.num_shards - 1);
    EXPECT_GE(fe.liveShards(), 1u);
    EXPECT_TRUE(fe.auditInvariants());
    for (size_t s = 0; s < fe.numShards(); ++s) {
        if (!fe.shardFailed(s)) {
            EXPECT_EQ(fe.shardEngine(s).kvBytesLive(), 0u)
                << "shard " << s;
        }
    }

    if (!failed_before && ::testing::Test::HasFailure())
        writeRouterFailureArtifact(fe, fmt, seed);
    return hs.failed_shards;
}

TEST(Router, ShardChaosFailoverKeepsStreamsBitExact)
{
    const Transformer model(tinyConfig());
    size_t total_failovers = 0;
    for (const char *fmt : kFormats) {
        for (const uint64_t seed : routerChaosSeeds())
            total_failovers += runShardChaosEpisode(model, fmt, seed);
    }
    // Across 9 episodes with every shard-level site armed, chaos that
    // never once crashed a shard means the sites are dead code, not
    // that the fleet got lucky.
    EXPECT_GT(total_failovers, 0u);
}

} // namespace
} // namespace mxplus
