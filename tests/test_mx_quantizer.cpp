/**
 * @file
 * Unit and property tests for the MX / MX+ / MX++ block quantizer,
 * including the paper's worked examples (Figures 4 and 6) and the
 * numerical contracts listed in DESIGN.md Section 5.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "formats/scale.h"
#include "mx/mx_quantizer.h"
#include "tensor/stats.h"

namespace mxplus {
namespace {

/** The upper sampled block of Figure 4(b) (outlier block). */
const std::vector<float> kOutlierBlock =
    {-0.27f, -0.19f, 0.99f, -0.20f, -9.84f, -0.39f};

/** The lower sampled block of Figure 4(b) (benign block). */
const std::vector<float> kBenignBlock =
    {-0.27f, 0.04f, -1.02f, 0.18f, -0.45f, -0.20f};

TEST(MxQuantizer, SharedExpMatchesEq1)
{
    const MxQuantizer q(ElementFormat::E2M1, MxMode::Standard);
    // Figure 6: BM = -9.84, floor(log2 9.84) = 3, e_max = 2 -> shared 1.
    EXPECT_EQ(q.sharedExp(kOutlierBlock.data(),
                          static_cast<int>(kOutlierBlock.size())), 1);
    // Benign block: BM = -1.02, floor(log2) = 0 -> shared -2.
    EXPECT_EQ(q.sharedExp(kBenignBlock.data(),
                          static_cast<int>(kBenignBlock.size())), -2);
}

TEST(MxQuantizer, PaperFig6OutlierBlockMxfp4)
{
    const MxQuantizer q(ElementFormat::E2M1, MxMode::Standard);
    std::vector<float> out(kOutlierBlock.size());
    q.fakeQuantizeBlock(kOutlierBlock.data(), out.data(),
                        static_cast<int>(kOutlierBlock.size()));
    // Paper: 0, 0, 1.00, 0, -8.00, 0.
    const std::vector<float> expected = {0, 0, 1.0f, 0, -8.0f, 0};
    EXPECT_EQ(out, expected);
}

TEST(MxQuantizer, PaperFig6OutlierBlockMxfp4Plus)
{
    const MxQuantizer q(ElementFormat::E2M1, MxMode::Plus);
    std::vector<float> out(kOutlierBlock.size());
    q.fakeQuantizeBlock(kOutlierBlock.data(), out.data(),
                        static_cast<int>(kOutlierBlock.size()));
    // Paper: 0, 0, 1.00, 0, -10.00, 0 — the BM gains a full extra digit.
    const std::vector<float> expected = {0, 0, 1.0f, 0, -10.0f, 0};
    EXPECT_EQ(out, expected);
}

TEST(MxQuantizer, PaperFig4BenignBlockMxfp4)
{
    const MxQuantizer q(ElementFormat::E2M1, MxMode::Standard);
    std::vector<float> out(kBenignBlock.size());
    q.fakeQuantizeBlock(kBenignBlock.data(), out.data(),
                        static_cast<int>(kBenignBlock.size()));
    // Paper: -0.25, 0, -1.00, 0.13, -0.50, -0.25.
    const std::vector<float> expected =
        {-0.25f, 0, -1.0f, 0.125f, -0.5f, -0.25f};
    EXPECT_EQ(out, expected);
}

TEST(MxQuantizer, Fig6BinaryEncodings)
{
    // Figure 6 shows the raw bit patterns for the outlier block.
    const MxQuantizer mx(ElementFormat::E2M1, MxMode::Standard);
    const MxQuantizer mxp(ElementFormat::E2M1, MxMode::Plus);
    const int n = static_cast<int>(kOutlierBlock.size());

    const MxBlock b = mx.encodeBlock(kOutlierBlock.data(), n);
    EXPECT_EQ(E8M0::decode(b.scale_code), 1);
    // 0.99 / 2 = 0.495 -> 0.5 (subnormal: S=0 E=00 M=1 -> 0b0001).
    EXPECT_EQ(b.codes[2], 0b0001u);
    // -9.84 / 2 = -4.92 -> -4.0 (S=1 E=11 M=0 -> 0b1110).
    EXPECT_EQ(b.codes[4], 0b1110u);

    const MxBlock bp = mxp.encodeBlock(kOutlierBlock.data(), n);
    EXPECT_EQ(bp.bm_index, 4);
    // BM -4.92 -> E0M3 code: 1.m = 5.0/4 = 1.010 -> S=1 M=010 -> 0b1010.
    EXPECT_EQ(bp.codes[4], 0b1010u);
}

TEST(MxQuantizer, BmScaledAlwaysInTopBinade)
{
    // DESIGN contract 2: |BM| / 2^shared_exp is in [2^emax, 2^(emax+1))
    // whenever the block is not flushed, so the BM exponent field is
    // redundant.
    Rng rng(123);
    const MxQuantizer q(ElementFormat::E2M1, MxMode::Plus);
    for (int trial = 0; trial < 2000; ++trial) {
        float block[32];
        for (auto &v : block)
            v = static_cast<float>(rng.studentT(2.0) *
                                   pow2d(static_cast<int>(
                                       rng.uniformInt(40)) - 20));
        if (q.isZeroBlock(block, 32))
            continue;
        const int bm = MxQuantizer::bmIndex(block, 32);
        const int se = q.sharedExp(block, 32);
        if (se == E8M0::kBias)
            continue; // top clamp: BM may exceed the binade (saturates)
        const double scaled = std::fabs(block[bm]) / pow2d(se);
        EXPECT_GE(scaled, pow2d(q.emax()));
        EXPECT_LT(scaled, pow2d(q.emax() + 1));
    }
}

TEST(MxQuantizer, ZeroBlockFlushRule)
{
    const MxQuantizer q(ElementFormat::E2M1, MxMode::Plus);
    // floor(log2 BM) <= -127 + emax = -125 -> flushed.
    float tiny[4] = {static_cast<float>(pow2d(-126)),
                     static_cast<float>(-pow2d(-130)), 0.0f, 0.0f};
    EXPECT_TRUE(q.isZeroBlock(tiny, 4));
    float out[4];
    q.fakeQuantizeBlock(tiny, out, 4);
    for (float v : out)
        EXPECT_EQ(v, 0.0f);
    const MxBlock b = q.encodeBlock(tiny, 4);
    EXPECT_EQ(b.scale_code, E8M0::kZeroBlock);

    // Just above the threshold: floor(log2) = -124 -> kept.
    float kept[4] = {static_cast<float>(pow2d(-124)) * 1.5f, 0.0f, 0.0f,
                     0.0f};
    EXPECT_FALSE(q.isZeroBlock(kept, 4));
    q.fakeQuantizeBlock(kept, out, 4);
    EXPECT_NE(out[0], 0.0f);
}

TEST(MxQuantizer, StandardMxDoesNotFlush)
{
    // Plain MX has no reserved zero-block code; tiny blocks clamp at -127.
    const MxQuantizer q(ElementFormat::E2M1, MxMode::Standard);
    float tiny[2] = {static_cast<float>(pow2d(-126)), 0.0f};
    EXPECT_FALSE(q.isZeroBlock(tiny, 2));
    float out[2];
    q.fakeQuantizeBlock(tiny, out, 2);
    // 2^-126 / 2^-127 = 2 -> representable exactly.
    EXPECT_EQ(out[0], tiny[0]);
}

TEST(MxQuantizer, AllZeroBlock)
{
    for (MxMode mode :
         {MxMode::Standard, MxMode::Plus, MxMode::PlusPlus}) {
        const MxQuantizer q(ElementFormat::E2M1, mode);
        float zeros[8] = {};
        float out[8] = {1, 1, 1, 1, 1, 1, 1, 1};
        q.fakeQuantizeBlock(zeros, out, 8);
        for (float v : out)
            EXPECT_EQ(v, 0.0f);
    }
}

TEST(MxQuantizer, BmIndexFirstOnTies)
{
    float block[4] = {2.0f, -2.0f, 1.0f, 2.0f};
    EXPECT_EQ(MxQuantizer::bmIndex(block, 4), 0);
}

TEST(MxQuantizer, AvgBitsPerElement)
{
    EXPECT_DOUBLE_EQ(
        MxQuantizer(ElementFormat::E2M1, MxMode::Standard)
            .avgBitsPerElement(), 4.25);
    EXPECT_DOUBLE_EQ(
        MxQuantizer(ElementFormat::E2M1, MxMode::Plus)
            .avgBitsPerElement(), 4.5);
    EXPECT_DOUBLE_EQ(
        MxQuantizer(ElementFormat::E4M3, MxMode::Standard)
            .avgBitsPerElement(), 8.25);
}

TEST(MxQuantizer, Names)
{
    EXPECT_EQ(MxQuantizer(ElementFormat::E2M1, MxMode::Standard).name(),
              "MXFP4");
    EXPECT_EQ(MxQuantizer(ElementFormat::E2M1, MxMode::Plus).name(),
              "MXFP4+");
    EXPECT_EQ(MxQuantizer(ElementFormat::E2M3, MxMode::PlusPlus).name(),
              "MXFP6++");
    EXPECT_EQ(MxQuantizer(ElementFormat::INT8, MxMode::Plus).name(),
              "MXINT8+");
}

TEST(MxQuantizer, MxInt8KnownValues)
{
    const MxQuantizer q(ElementFormat::INT8, MxMode::Standard);
    float block[3] = {1.0f, 0.5f, -0.25f};
    float out[3];
    q.fakeQuantizeBlock(block, out, 3);
    // amax = 1 -> shared exp 0; INT8 grid step 1/64 represents these
    // values exactly.
    EXPECT_EQ(out[0], 1.0f);
    EXPECT_EQ(out[1], 0.5f);
    EXPECT_EQ(out[2], -0.25f);
}

TEST(MxQuantizer, MxInt8PlusBmGainsFractionBit)
{
    // The MXINT8+ BM is stored as +-1.f7 (implicit integer bit): step
    // 1/128 instead of 1/64.
    const MxQuantizer plus(ElementFormat::INT8, MxMode::Plus);
    const MxQuantizer std_q(ElementFormat::INT8, MxMode::Standard);
    float block[2] = {1.0f + 1.0f / 128.0f, 0.25f};
    float out_p[2];
    float out_s[2];
    plus.fakeQuantizeBlock(block, out_p, 2);
    std_q.fakeQuantizeBlock(block, out_s, 2);
    EXPECT_EQ(out_p[0], block[0]); // exact on the finer grid
    EXPECT_NE(out_s[0], block[0]); // rounds on the 1/64 grid
}

// ---------------------------------------------------------------------------
// Parameterized property sweep across element formats and modes.
// ---------------------------------------------------------------------------

using FormatMode = std::tuple<ElementFormat, MxMode>;

class MxPropertyTest : public ::testing::TestWithParam<FormatMode>
{
  protected:
    ElementFormat format() const { return std::get<0>(GetParam()); }
    MxMode mode() const { return std::get<1>(GetParam()); }

    /** Random block with occasional outliers, scaled across binades. */
    std::vector<float>
    randomBlock(Rng &rng, int n) const
    {
        std::vector<float> block(n);
        const double base =
            pow2d(static_cast<int>(rng.uniformInt(30)) - 15);
        for (auto &v : block) {
            v = static_cast<float>(rng.gaussian(0.0, base));
            if (rng.uniform() < 0.05)
                v *= 30.0f; // inject an outlier
        }
        return block;
    }
};

TEST_P(MxPropertyTest, EncodeDecodeMatchesFakeQuantize)
{
    const MxQuantizer q(format(), mode());
    Rng rng(1000 + static_cast<int>(format()) * 10 +
            static_cast<int>(mode()));
    for (int trial = 0; trial < 500; ++trial) {
        const auto block = randomBlock(rng, 32);
        float fake[32];
        float decoded[32];
        q.fakeQuantizeBlock(block.data(), fake, 32);
        const MxBlock enc = q.encodeBlock(block.data(), 32);
        q.decodeBlock(enc, decoded, 32);
        for (int i = 0; i < 32; ++i)
            EXPECT_EQ(fake[i], decoded[i])
                << q.name() << " trial " << trial << " elem " << i;
    }
}

TEST_P(MxPropertyTest, QuantizeIsIdempotentWhenBmStable)
{
    // MX quantization is idempotent whenever the block max is stable:
    // same BM element and same binade after rounding. (It is genuinely
    // NOT idempotent in two corner cases: an INT block-max rounding up to
    // the asymmetric two's-complement minimum -2.0 crosses a binade, and
    // in MX+/MX++ an NBM can round above the quantized BM. Both change
    // the shared scale of a second pass.)
    // MX++ is excluded: its NBM scale derives from the second-largest
    // exponent, which rounding can legitimately move.
    if (mode() == MxMode::PlusPlus)
        GTEST_SKIP();
    const MxQuantizer q(format(), mode());
    Rng rng(2000 + static_cast<int>(format()) * 10 +
            static_cast<int>(mode()));
    int checked = 0;
    for (int trial = 0; trial < 300; ++trial) {
        const auto block = randomBlock(rng, 32);
        float once[32];
        float twice[32];
        q.fakeQuantizeBlock(block.data(), once, 32);
        bool all_zero = true;
        for (float v : once)
            all_zero = all_zero && v == 0.0f;
        if (all_zero)
            continue;
        if (MxQuantizer::bmIndex(once, 32) !=
            MxQuantizer::bmIndex(block.data(), 32)) {
            continue;
        }
        if (q.sharedExp(once, 32) != q.sharedExp(block.data(), 32))
            continue;
        q.fakeQuantizeBlock(once, twice, 32);
        ++checked;
        for (int i = 0; i < 32; ++i)
            EXPECT_EQ(once[i], twice[i]) << q.name();
    }
    EXPECT_GT(checked, 100) << q.name(); // precondition rarely fails
}

TEST_P(MxPropertyTest, SignsPreserved)
{
    const MxQuantizer q(format(), mode());
    Rng rng(3000 + static_cast<int>(format()));
    for (int trial = 0; trial < 200; ++trial) {
        const auto block = randomBlock(rng, 32);
        float out[32];
        q.fakeQuantizeBlock(block.data(), out, 32);
        for (int i = 0; i < 32; ++i) {
            if (out[i] != 0.0f) {
                EXPECT_EQ(std::signbit(out[i]), std::signbit(block[i]))
                    << q.name();
            }
        }
    }
}

TEST_P(MxPropertyTest, ShortBlocksSupported)
{
    const MxQuantizer q(format(), mode());
    Rng rng(4000);
    for (int n : {1, 2, 3, 7, 31}) {
        const auto block = randomBlock(rng, n);
        std::vector<float> out(n);
        q.fakeQuantizeBlock(block.data(), out.data(), n);
        const MxBlock enc = q.encodeBlock(block.data(), n);
        std::vector<float> dec(n);
        q.decodeBlock(enc, dec.data(), n);
        EXPECT_EQ(out, dec) << q.name() << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormatModes, MxPropertyTest,
    ::testing::Combine(
        ::testing::Values(ElementFormat::E2M1, ElementFormat::E2M3,
                          ElementFormat::E3M2, ElementFormat::E4M3,
                          ElementFormat::E5M2, ElementFormat::INT8,
                          ElementFormat::INT4),
        ::testing::Values(MxMode::Standard, MxMode::Plus,
                          MxMode::PlusPlus)),
    [](const ::testing::TestParamInfo<FormatMode> &info) {
        std::string n =
            elementFormatInfo(std::get<0>(info.param)).name;
        switch (std::get<1>(info.param)) {
          case MxMode::Standard: n += "_MX"; break;
          case MxMode::Plus: n += "_MXPlus"; break;
          case MxMode::PlusPlus: n += "_MXPlusPlus"; break;
        }
        return n;
    });

// ---------------------------------------------------------------------------
// Error-ordering contracts (DESIGN contracts 4 and the MX++ refinement).
// ---------------------------------------------------------------------------

class MxErrorOrderTest : public ::testing::TestWithParam<ElementFormat>
{
};

TEST_P(MxErrorOrderTest, PlusNeverWorseThanStandard)
{
    const MxQuantizer mx(GetParam(), MxMode::Standard);
    const MxQuantizer mxp(GetParam(), MxMode::Plus);
    Rng rng(5000 + static_cast<int>(GetParam()));
    for (int trial = 0; trial < 500; ++trial) {
        float block[32];
        for (auto &v : block) {
            v = static_cast<float>(rng.gaussian(0.0, 1.0));
            if (rng.uniform() < 0.08)
                v *= 25.0f;
        }
        float q_std[32];
        float q_plus[32];
        mx.fakeQuantizeBlock(block, q_std, 32);
        mxp.fakeQuantizeBlock(block, q_plus, 32);
        // Same shared scale, identical NBM handling, strictly finer BM
        // grid: block MSE can only go down.
        EXPECT_LE(mse(block, q_plus, 32), mse(block, q_std, 32) + 1e-12)
            << elementFormatInfo(GetParam()).name;
    }
}

TEST_P(MxErrorOrderTest, PlusPlusNeverWorseThanPlus)
{
    const MxQuantizer mxp(GetParam(), MxMode::Plus);
    const MxQuantizer mxpp(GetParam(), MxMode::PlusPlus);
    Rng rng(6000 + static_cast<int>(GetParam()));
    for (int trial = 0; trial < 500; ++trial) {
        float block[32];
        for (auto &v : block) {
            v = static_cast<float>(rng.gaussian(0.0, 1.0));
            if (rng.uniform() < 0.08)
                v *= 25.0f;
        }
        float q_plus[32];
        float q_pp[32];
        mxp.fakeQuantizeBlock(block, q_plus, 32);
        mxpp.fakeQuantizeBlock(block, q_pp, 32);
        EXPECT_LE(mse(block, q_pp, 32), mse(block, q_plus, 32) + 1e-12)
            << elementFormatInfo(GetParam()).name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    FloatFormats, MxErrorOrderTest,
    ::testing::Values(ElementFormat::E2M1, ElementFormat::E2M3,
                      ElementFormat::E4M3),
    [](const ::testing::TestParamInfo<ElementFormat> &info) {
        return elementFormatInfo(info.param).name;
    });

TEST(MxPlusPlus, NbmDeltaWithinThreeBits)
{
    const MxQuantizer q(ElementFormat::E2M1, MxMode::PlusPlus);
    Rng rng(7000);
    for (int trial = 0; trial < 1000; ++trial) {
        float block[32];
        for (auto &v : block)
            v = static_cast<float>(rng.studentT(2.5));
        const MxBlock enc = q.encodeBlock(block, 32);
        EXPECT_LE(enc.nbm_delta, 7);
    }
}

TEST(MxPlusPlus, PaperSection43Example)
{
    // From Section 4.3: in the Fig. 6 block, MX++ chooses shared_exp_new
    // = -2 so the NBM -0.39 maps to -1.5 * 2^-2 = -0.375 instead of 0.
    const MxQuantizer q(ElementFormat::E2M1, MxMode::PlusPlus);
    std::vector<float> out(kOutlierBlock.size());
    q.fakeQuantizeBlock(kOutlierBlock.data(), out.data(),
                        static_cast<int>(kOutlierBlock.size()));
    const MxBlock enc = q.encodeBlock(
        kOutlierBlock.data(), static_cast<int>(kOutlierBlock.size()));
    // shared_exp = 1, shared_exp_new = -2 -> delta 3.
    EXPECT_EQ(E8M0::decode(enc.scale_code), 1);
    EXPECT_EQ(enc.nbm_delta, 3);
    EXPECT_FLOAT_EQ(out[5], -0.375f); // -0.39 survives
    EXPECT_FLOAT_EQ(out[4], -10.0f);  // BM same as MX+
    // 0.99 scales to 3.96 at 2^-2 and must NOT saturate (the +1 offset).
    EXPECT_FLOAT_EQ(out[2], 1.0f);
}

TEST(MxAnalysis, BmDominatesBlockMseOnOutlierData)
{
    // Figure 5's observation: with outlier-bearing activations, the BM
    // element accounts for a large share of MXFP4 quantization MSE.
    Rng rng(8000);
    std::vector<float> data(32 * 256);
    for (auto &v : data) {
        v = static_cast<float>(rng.gaussian(0.0, 0.1));
        if (rng.uniform() < 0.02)
            v = static_cast<float>(rng.gaussian(0.0, 4.0));
    }
    const MxQuantizer q(ElementFormat::E2M1, MxMode::Standard);
    const auto breakdown = analyzeBlockError(q, data.data(), data.size());
    EXPECT_GT(breakdown.bm_share, 0.5);
    EXPECT_GE(breakdown.largest_error_share, breakdown.bm_share - 1e-9);
}

} // namespace
} // namespace mxplus
