/**
 * @file
 * Tests for the GPU performance models and the functional DPE:
 * roofline behaviour, integration-path overheads, Figure 11/12 shapes,
 * Table 5 totals, and DESIGN contract 7 (DPE == reference GEMM).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gpusim/area_power.h"
#include "gpusim/dpe.h"
#include "gpusim/gemm_timing.h"
#include "gpusim/llm_timing.h"
#include "mx/software_path.h"
#include "tensor/tensor.h"

namespace mxplus {
namespace {

GemmShape
shape(size_t m, size_t n, size_t k, OperandFormat a, OperandFormat b,
      IntegrationPath p)
{
    return GemmShape{m, n, k, a, b, p};
}

TEST(GemmTiming, DecodeShapesAreMemoryBound)
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    const auto t = gemmTime(gpu, shape(4, 5120, 5120,
                                       OperandFormat::MXFP4,
                                       OperandFormat::MXFP4,
                                       IntegrationPath::DirectMx));
    EXPECT_GT(t.memory_us, t.compute_us * 5.0);
    EXPECT_DOUBLE_EQ(t.total_us, t.memory_us);
}

TEST(GemmTiming, PrefillShapesAreComputeBound)
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    const auto t = gemmTime(gpu, shape(4096, 5120, 5120,
                                       OperandFormat::MXFP4,
                                       OperandFormat::MXFP4,
                                       IntegrationPath::DirectMx));
    EXPECT_GT(t.compute_us, t.memory_us);
}

TEST(GemmTiming, MxPlusSoftwareOverheadVanishesWhenMemoryBound)
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    // Decode-like shape: the extra sparse MMA hides under memory time.
    const auto base = gemmTime(gpu, shape(4, 5120, 5120,
                                          OperandFormat::MXFP4,
                                          OperandFormat::MXFP4,
                                          IntegrationPath::DirectMx));
    const auto sw = gemmTime(gpu, shape(4, 5120, 5120,
                                        OperandFormat::MXFP4Plus,
                                        OperandFormat::MXFP4,
                                        IntegrationPath::MxPlusSoftware));
    EXPECT_LT(sw.total_us / base.total_us, 1.05);
    // Prefill-like shape: the 1.5x instruction factor shows.
    const auto base_p = gemmTime(gpu, shape(4096, 5120, 5120,
                                            OperandFormat::MXFP4,
                                            OperandFormat::MXFP4,
                                            IntegrationPath::DirectMx));
    const auto sw_p = gemmTime(gpu, shape(4096, 5120, 5120,
                                          OperandFormat::MXFP4Plus,
                                          OperandFormat::MXFP4,
                                          IntegrationPath::MxPlusSoftware));
    EXPECT_GT(sw_p.total_us / base_p.total_us, 1.3);
    EXPECT_LT(sw_p.total_us / base_p.total_us, 1.6);
}

TEST(GemmTiming, HardwareOverheadSubPercent)
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    const auto base = gemmTime(gpu, shape(4096, 4096, 4096,
                                          OperandFormat::MXFP4,
                                          OperandFormat::MXFP4,
                                          IntegrationPath::DirectMx));
    const auto hw = gemmTime(gpu, shape(4096, 4096, 4096,
                                        OperandFormat::MXFP4Plus,
                                        OperandFormat::MXFP4Plus,
                                        IntegrationPath::MxPlusHardware));
    const double ratio = hw.total_us / base.total_us;
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 1.01);
}

TEST(GemmTiming, CudaCoreFallbackMoreThanFiveTimesSlower)
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    const auto base = gemmTime(gpu, shape(4096, 4096, 4096,
                                          OperandFormat::MXFP4,
                                          OperandFormat::MXFP4,
                                          IntegrationPath::DirectMx));
    const auto fb = gemmTime(gpu, shape(4096, 4096, 4096,
                                        OperandFormat::MXFP4Plus,
                                        OperandFormat::MXFP4,
                                        IntegrationPath::CudaCoreFallback));
    EXPECT_GT(fb.total_us / base.total_us, 5.0);
}

TEST(GemmTiming, ConversionOverheadLargerAtSmallM)
{
    const GpuConfig gpu = GpuConfig::a6000();
    auto ratio = [&](size_t m) {
        const auto base = gemmTime(gpu, shape(m, 4096, 4096,
                                              OperandFormat::BF16,
                                              OperandFormat::MXFP4,
                                              IntegrationPath::ConvertToBf16));
        const auto plus = gemmTime(gpu, shape(m, 4096, 4096,
                                              OperandFormat::BF16,
                                              OperandFormat::MXFP4Plus,
                                              IntegrationPath::ConvertToBf16));
        return plus.total_us / base.total_us;
    };
    EXPECT_GT(ratio(8), ratio(4096));
    EXPECT_LT(ratio(8), 1.15);   // small but visible (paper: 1.08)
    EXPECT_LT(ratio(4096), 1.03); // amortized (paper: 1.01)
}

TEST(QuantizeTime, OrderingAndAmortization)
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    for (size_t tokens : {32, 512, 2048}) {
        const double t4 = quantizeTime(gpu, tokens, 5120, "MXFP4");
        const double t4p = quantizeTime(gpu, tokens, 5120, "MXFP4+");
        const double t4pp = quantizeTime(gpu, tokens, 5120, "MXFP4++");
        EXPECT_LE(t4, t4p);
        EXPECT_LT(t4p, t4pp);
        EXPECT_LT(t4pp / t4, 1.16); // paper: at most 1.15
    }
}

TEST(LlmTiming, DecodeDominatesLongOutputs)
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    ServingConfig c;
    c.output_tokens = 64;
    const ServingTime t =
        servingTime(gpu, LlmDims::llama2_13b(), c);
    EXPECT_GT(t.decode_ms, t.prefill_ms);
}

TEST(LlmTiming, MxPlusGapShrinksWithOutputLength)
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    auto ratio = [&](size_t out) {
        ServingConfig base;
        base.output_tokens = out;
        ServingConfig sw = base;
        sw.act_format = OperandFormat::MXFP4Plus;
        sw.path = IntegrationPath::MxPlusSoftware;
        const double t0 =
            servingTime(gpu, LlmDims::llama2_13b(), base).total();
        const double t1 =
            servingTime(gpu, LlmDims::llama2_13b(), sw).total();
        return t1 / t0;
    };
    EXPECT_GT(ratio(8), ratio(256));
    EXPECT_LT(ratio(256), 1.06);
}

TEST(LlmTiming, SpeedupOverBf16MatchesPaperBallpark)
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    const LlmDims dims = LlmDims::llama2_13b();
    ServingConfig bf16;
    bf16.act_format = OperandFormat::BF16;
    bf16.weight_format = OperandFormat::BF16;
    ServingConfig hw;
    hw.act_format = OperandFormat::MXFP4Plus;
    hw.weight_format = OperandFormat::MXFP4Plus;
    hw.path = IntegrationPath::MxPlusHardware;
    for (size_t out : {8, 64}) {
        bf16.output_tokens = hw.output_tokens = out;
        const double speedup =
            servingTime(gpu, dims, bf16).total() /
            servingTime(gpu, dims, hw).total();
        // Paper: 3.34x (prefill-dominant) and 2.73x (decode-dominant).
        EXPECT_GT(speedup, 2.0) << out;
        EXPECT_LT(speedup, 4.5) << out;
    }
}

TEST(AreaPower, ReproducesTable5Totals)
{
    const AreaPowerModel model;
    const AreaPowerReport rep = model.report();
    EXPECT_NEAR(rep.total_area_mm2, 0.020, 1e-9);
    EXPECT_NEAR(rep.total_power_mw, 12.11, 1e-9);
    ASSERT_EQ(rep.components.size(), 3u);
    EXPECT_EQ(rep.components[0].count, 512u);
    EXPECT_EQ(rep.components[1].count, 32u);
    EXPECT_EQ(rep.components[2].count, 32u);
}

TEST(AreaPower, SystolicSharingReducesBcuCost)
{
    const AreaPowerModel gpu_model;
    const AreaPowerModel systolic(32, 32, 1.0 / 32.0);
    EXPECT_LT(systolic.report().total_power_mw -
                  systolic.report().components[0].unit_power_mw *
                      systolic.report().components[0].count,
              gpu_model.report().total_power_mw);
}

// ---------------------------------------------------------------------------
// Functional DPE (DESIGN contract 7).
// ---------------------------------------------------------------------------

class DpeTest : public ::testing::Test
{
  protected:
    Matrix
    randomMatrix(Rng &rng, size_t rows, size_t cols, double outlier_p)
    {
        Matrix m(rows, cols);
        for (size_t i = 0; i < m.size(); ++i) {
            m.data()[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
            if (rng.uniform() < outlier_p)
                m.data()[i] *= 30.0f;
        }
        return m;
    }
};

TEST_F(DpeTest, MatchesReferenceGemmMxPlusTimesMx)
{
    Rng rng(41);
    const MxQuantizer qa(ElementFormat::E2M1, MxMode::Plus);
    const MxQuantizer qb(ElementFormat::E2M1, MxMode::Standard);
    const Matrix a = randomMatrix(rng, 5, 128, 0.05);
    const Matrix b = randomMatrix(rng, 7, 128, 0.0);
    const PackedMatrix pa(qa, a.data(), a.rows(), a.cols());
    const PackedMatrix pb(qb, b.data(), b.rows(), b.cols());
    const auto ref = mxGemmReference(pa, pb);
    TensorCoreStats stats;
    const auto out = tensorCoreGemm(pa, pb, &stats);
    ASSERT_EQ(ref.size(), out.size());
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_DOUBLE_EQ(ref[i], out[i]);
    EXPECT_EQ(stats.block_pairs, 5u * 7u * 4u);
    EXPECT_EQ(stats.cycles, stats.block_pairs * 2);
    EXPECT_GT(stats.bcu_mults, 0u);
}

TEST_F(DpeTest, MatchesReferenceBothOperandsMxPlus)
{
    Rng rng(42);
    for (ElementFormat fmt :
         {ElementFormat::E2M1, ElementFormat::E2M3,
          ElementFormat::E4M3}) {
        const MxQuantizer q(fmt, MxMode::Plus);
        const Matrix a = randomMatrix(rng, 4, 96, 0.08);
        const Matrix b = randomMatrix(rng, 4, 96, 0.08);
        const PackedMatrix pa(q, a.data(), a.rows(), a.cols());
        const PackedMatrix pb(q, b.data(), b.rows(), b.cols());
        const auto ref = mxGemmReference(pa, pb);
        const auto out = tensorCoreGemm(pa, pb);
        for (size_t i = 0; i < ref.size(); ++i)
            EXPECT_DOUBLE_EQ(ref[i], out[i])
                << elementFormatInfo(fmt).name;
    }
}

TEST_F(DpeTest, MatchesReferenceMxPlusPlusDeltas)
{
    Rng rng(43);
    const MxQuantizer qa(ElementFormat::E2M1, MxMode::PlusPlus);
    const MxQuantizer qb(ElementFormat::E2M1, MxMode::PlusPlus);
    const Matrix a = randomMatrix(rng, 4, 128, 0.1);
    const Matrix b = randomMatrix(rng, 4, 128, 0.1);
    const PackedMatrix pa(qa, a.data(), a.rows(), a.cols());
    const PackedMatrix pb(qb, b.data(), b.rows(), b.cols());
    const auto ref = mxGemmReference(pa, pb);
    const auto out = tensorCoreGemm(pa, pb);
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_DOUBLE_EQ(ref[i], out[i]);
}

TEST_F(DpeTest, SwapRuleWhenBmIndicesCoincide)
{
    // Force both blocks to have their BM at lane 0.
    const MxQuantizer q(ElementFormat::E2M1, MxMode::Plus);
    float a[32] = {};
    float b[32] = {};
    a[0] = 50.0f;
    b[0] = -40.0f;
    for (int i = 1; i < 32; ++i) {
        a[i] = 0.5f;
        b[i] = 0.25f;
    }
    const MxBlock ba = q.encodeBlock(a, 32);
    const MxBlock bb = q.encodeBlock(b, 32);
    const DotProductEngine dpe(q, q);
    const DpeResult r = dpe.compute(ba, bb);
    EXPECT_TRUE(r.swapped);
    // Reference dot product of the dequantized blocks.
    float da[32];
    float db[32];
    q.decodeBlock(ba, da, 32);
    q.decodeBlock(bb, db, 32);
    double ref = 0.0;
    for (int i = 0; i < 32; ++i)
        ref += static_cast<double>(da[i]) * db[i];
    EXPECT_DOUBLE_EQ(r.value, ref);
}

TEST_F(DpeTest, ZeroBlocksContributeNothing)
{
    const MxQuantizer q(ElementFormat::E2M1, MxMode::Plus);
    float tiny[32] = {};
    tiny[3] = 1e-40f;
    float normal[32];
    for (auto &v : normal)
        v = 1.0f;
    const MxBlock bz = q.encodeBlock(tiny, 32);
    const MxBlock bn = q.encodeBlock(normal, 32);
    const DotProductEngine dpe(q, q);
    EXPECT_EQ(dpe.compute(bz, bn).value, 0.0);
}

TEST_F(DpeTest, CycleModelMatchesSection62)
{
    const MxQuantizer fp4(ElementFormat::E2M1, MxMode::Plus);
    const MxQuantizer fp8(ElementFormat::E4M3, MxMode::Plus);
    EXPECT_EQ(DotProductEngine(fp4, fp4).cyclesPerBlockPair(), 2);
    EXPECT_EQ(DotProductEngine(fp8, fp8).cyclesPerBlockPair(), 4);
}

} // namespace
} // namespace mxplus
