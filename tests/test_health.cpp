/**
 * @file
 * Detector-determinism proofs for the fleet failure detector
 * (serve/health.h), driven entirely on a VIRTUAL clock: the monitor is
 * passive (observe() takes the caller's timestamp), so every verdict
 * sequence here is a pure function of (observation sequence, timeouts)
 * — no sleeps, no wall-clock flake. The three properties the router's
 * supervision rests on:
 *
 *  - a wedged shard (busy, frozen epoch) is ALWAYS declared dead
 *    within heartbeat_timeout_ms of its last progress, regardless of
 *    how often it keeps beating;
 *  - a healthy-but-loaded shard (epoch moving every tick) is NEVER
 *    declared degraded or dead, however deep its queue;
 *  - an idle shard (no outstanding work) is exempt no matter how
 *    stale its epoch — asleep is not dead.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/health.h"

namespace mxplus {
namespace {

HealthConfig
cfg(double timeout, double degraded = 0.0)
{
    HealthConfig c;
    c.heartbeat_timeout_ms = timeout;
    c.degraded_after_ms = degraded;
    return c;
}

TEST(Health, HealthyLoadedShardIsNeverSuspected)
{
    HealthMonitor mon(1, cfg(100.0));
    // Busy for 10k virtual ms, epoch advancing every observation — a
    // deeply loaded but progressing shard must stay healthy forever.
    uint64_t epoch = 0;
    for (double now = 0.0; now <= 10000.0; now += 10.0)
        EXPECT_EQ(mon.observe(0, ++epoch, /*busy=*/true, now),
                  ShardHealth::kHealthy)
            << "at t=" << now;
    EXPECT_EQ(mon.degradedTransitions(), 0u);
    EXPECT_EQ(mon.deadDetected(), 0u);
}

TEST(Health, WedgedShardIsDetectedWithinTimeout)
{
    // The wedged-consumer signature: busy, epoch frozen. Beats (which
    // the monitor never even sees — by design) cannot save it.
    HealthMonitor mon(1, cfg(100.0, 25.0));
    EXPECT_EQ(mon.observe(0, 7, true, 0.0), ShardHealth::kHealthy);
    // Just short of each threshold: verdict must not fire early...
    EXPECT_EQ(mon.observe(0, 7, true, 24.0), ShardHealth::kHealthy);
    EXPECT_EQ(mon.observe(0, 7, true, 25.0), ShardHealth::kDegraded);
    EXPECT_EQ(mon.observe(0, 7, true, 99.0), ShardHealth::kDegraded);
    // ...and must fire the first observation at/after the deadline:
    // detection latency <= heartbeat_timeout_ms on the virtual clock.
    EXPECT_EQ(mon.observe(0, 7, true, 100.0), ShardHealth::kDead);
    EXPECT_EQ(mon.deadDetected(), 1u);
    EXPECT_EQ(mon.degradedTransitions(), 1u);
}

TEST(Health, DeadIsStickyEvenIfTheEpochMovesAgain)
{
    // A falsely-declared shard that lurches back to life after the
    // verdict stays dead: recovery is failover, not forgiveness (the
    // router already re-owned its tickets).
    HealthMonitor mon(1, cfg(50.0));
    mon.observe(0, 1, true, 0.0);
    EXPECT_EQ(mon.observe(0, 1, true, 60.0), ShardHealth::kDead);
    EXPECT_EQ(mon.observe(0, 2, true, 61.0), ShardHealth::kDead);
    EXPECT_EQ(mon.observe(0, 99, false, 1000.0), ShardHealth::kDead);
    EXPECT_EQ(mon.state(0), ShardHealth::kDead);
    EXPECT_EQ(mon.deadDetected(), 1u); // counted once, not per tick
}

TEST(Health, IdleShardIsExemptHoweverStaleItsEpoch)
{
    HealthMonitor mon(1, cfg(50.0));
    mon.observe(0, 3, true, 0.0);
    // Goes idle: epoch frozen for 100x the timeout, but busy=false
    // refreshes the progress mark — asleep on the wake channel is the
    // NORMAL idle state, not a failure.
    for (double now = 10.0; now <= 5000.0; now += 10.0)
        EXPECT_EQ(mon.observe(0, 3, /*busy=*/false, now),
                  ShardHealth::kHealthy)
            << "at t=" << now;
    // And the idle period must not bank staleness: once busy again,
    // the full thresholds (degraded at timeout/4 = 12.5, dead at 50)
    // apply from the last (idle) observation at t=5000.
    EXPECT_EQ(mon.observe(0, 3, true, 5010.0), ShardHealth::kHealthy);
    EXPECT_EQ(mon.observe(0, 3, true, 5049.0), ShardHealth::kDegraded);
    EXPECT_EQ(mon.observe(0, 3, true, 5050.0), ShardHealth::kDead);
}

TEST(Health, DegradedShardRecoversOnEpochProgress)
{
    HealthMonitor mon(1, cfg(100.0, 25.0));
    mon.observe(0, 1, true, 0.0);
    EXPECT_EQ(mon.observe(0, 1, true, 30.0), ShardHealth::kDegraded);
    // The circuit breaker closes the moment progress resumes...
    EXPECT_EQ(mon.observe(0, 2, true, 40.0), ShardHealth::kHealthy);
    EXPECT_EQ(mon.recoveries(), 1u);
    // ...and the staleness clock restarts from the recovery.
    EXPECT_EQ(mon.observe(0, 2, true, 64.0), ShardHealth::kHealthy);
    EXPECT_EQ(mon.observe(0, 2, true, 65.0), ShardHealth::kDegraded);
    EXPECT_EQ(mon.degradedTransitions(), 2u);
}

TEST(Health, VerdictSequenceIsAPureFunctionOfObservations)
{
    // Replay an identical observation tape through two monitors: every
    // verdict and every counter must match — the property that makes
    // any detection-latency failure reproducible from its tape.
    struct Obs
    {
        size_t shard;
        uint64_t epoch;
        bool busy;
        double now;
    };
    std::vector<Obs> tape;
    uint64_t e0 = 0;
    for (int i = 0; i < 200; ++i) {
        const double now = 5.0 * i;
        tape.push_back({0, (i % 3 == 0) ? ++e0 : e0, true, now});
        // Shard 1: busy for the first 40 ticks with a frozen epoch
        // (wedged), idle afterwards — dead must latch before the idle
        // phase could have exempted it.
        tape.push_back({1, 42, i < 40, now});
    }
    auto run = [&tape](std::string *verdicts, size_t *dead) {
        HealthMonitor mon(2, cfg(60.0, 15.0));
        for (const Obs &o : tape)
            verdicts->push_back(static_cast<char>(
                '0' +
                static_cast<int>(
                    mon.observe(o.shard, o.epoch, o.busy, o.now))));
        *dead = mon.deadDetected();
    };
    std::string va, vb;
    size_t da = 0, db = 0;
    run(&va, &da);
    run(&vb, &db);
    EXPECT_EQ(va, vb);
    EXPECT_EQ(da, db);
    EXPECT_EQ(da, 1u) << "shard 1's wedge fires exactly one detection";
}

TEST(Health, MarkDeadIsStickyAndNotCountedAsDetection)
{
    HealthMonitor mon(3, cfg(100.0));
    mon.markDead(1); // manual failShard path
    EXPECT_EQ(mon.state(1), ShardHealth::kDead);
    EXPECT_EQ(mon.observe(1, 5, true, 1.0), ShardHealth::kDead);
    EXPECT_EQ(mon.deadDetected(), 0u);
    EXPECT_EQ(mon.state(0), ShardHealth::kHealthy);
    EXPECT_EQ(mon.state(2), ShardHealth::kHealthy);
}

TEST(Health, ZeroTimeoutDisablesTheDetector)
{
    HealthMonitor mon(1, cfg(0.0));
    mon.observe(0, 1, true, 0.0);
    EXPECT_EQ(mon.observe(0, 1, true, 1e9), ShardHealth::kHealthy);
    EXPECT_EQ(mon.deadDetected(), 0u);
}

TEST(Health, DegradedDefaultResolvesToAQuarterTimeout)
{
    HealthMonitor mon(1, cfg(100.0)); // degraded_after_ms = 0 -> 25
    EXPECT_DOUBLE_EQ(mon.degradedAfterMs(), 25.0);
    mon.observe(0, 1, true, 0.0);
    EXPECT_EQ(mon.observe(0, 1, true, 24.0), ShardHealth::kHealthy);
    EXPECT_EQ(mon.observe(0, 1, true, 25.0), ShardHealth::kDegraded);

    HealthMonitor explicit_mon(1, cfg(100.0, 40.0));
    EXPECT_DOUBLE_EQ(explicit_mon.degradedAfterMs(), 40.0);
}

TEST(Health, StaleMsTracksTheLastProgressMark)
{
    HealthMonitor mon(1, cfg(100.0));
    EXPECT_DOUBLE_EQ(mon.staleMs(0, 50.0), 0.0); // never observed
    mon.observe(0, 1, true, 10.0);
    EXPECT_DOUBLE_EQ(mon.staleMs(0, 35.0), 25.0);
    mon.observe(0, 2, true, 40.0); // progress resets the mark
    EXPECT_DOUBLE_EQ(mon.staleMs(0, 41.0), 1.0);
}

TEST(Health, ShardHealthNamesAreStable)
{
    // The names appear in failure artifacts and docs tables.
    EXPECT_STREQ(shardHealthName(ShardHealth::kHealthy), "healthy");
    EXPECT_STREQ(shardHealthName(ShardHealth::kDegraded), "degraded");
    EXPECT_STREQ(shardHealthName(ShardHealth::kDead), "dead");
}

} // namespace
} // namespace mxplus
