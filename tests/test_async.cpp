/**
 * @file
 * Tests for the async serving front end (serve/async_engine.h): the
 * lock-free MPSC submit ring, concurrent multi-producer submit/cancel
 * stress against the bit-identical-streams invariant, per-request
 * streaming semantics, drain/stats hand-off, and the decode worker
 * pool's bit-identity (EngineOptions::num_threads).
 *
 * The load-bearing claims, each asserted per quantization format:
 *  - A request's token stream through AsyncFrontEnd is bit-identical
 *    to submitting the same ServeRequest to a plain ServingEngine,
 *    regardless of how many producer threads raced on submission.
 *  - Cancelled requests deliver a bit-exact PREFIX of their
 *    uncancelled stream.
 *  - num_threads > 1 changes throughput only: streams are bit-equal
 *    to the serial engine's.
 *
 * This file runs under the ThreadSanitizer CI job (label `serving`),
 * so every mutex/atomic hand-off here is also a TSan proof obligation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/worker_pool.h"
#include "serve/async_engine.h"
#include "serve/serving_engine.h"

namespace mxplus {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig cfg = simLlama31_8b();
    cfg.n_layers = 2;
    return cfg;
}

std::vector<int>
tokenRamp(size_t n, int stride)
{
    std::vector<int> t(n);
    for (size_t i = 0; i < n; ++i)
        t[i] = static_cast<int>((7 + i * stride) % 251);
    return t;
}

/** A varied batch: different prompt lengths, contents and lengths of
    answer, so scheduling order genuinely differs between runs. */
std::vector<ServeRequest>
makeRequests(size_t n)
{
    std::vector<ServeRequest> reqs(n);
    for (size_t i = 0; i < n; ++i) {
        reqs[i].prompt = tokenRamp(8 + 5 * (i % 4), static_cast<int>(3 + i));
        reqs[i].max_new_tokens = 4 + (i % 3) * 3;
    }
    return reqs;
}

const char *const kFormats[] = {"BF16", "MXFP8", "MXFP4+"};

// ------------------------------------------------------------ SubmitRing --

TEST(SubmitRing, MultiProducerDeliversEverythingInProducerOrder)
{
    SubmitRing ring(64);
    constexpr size_t kProducers = 4;
    constexpr size_t kPerProducer = 500;

    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&ring, p] {
            for (size_t i = 0; i < kPerProducer; ++i) {
                SubmitRing::Cmd cmd;
                cmd.kind = SubmitRing::Cmd::Kind::kSubmit;
                cmd.ticket = p * kPerProducer + i;
                while (!ring.tryPush(std::move(cmd)))
                    std::this_thread::yield();
            }
        });
    }

    // Single consumer: per producer, tickets must arrive in submission
    // order (the ring is FIFO per producer), and nothing may be lost
    // or duplicated.
    std::vector<uint64_t> next_expected(kProducers, 0);
    size_t received = 0;
    while (received < kProducers * kPerProducer) {
        SubmitRing::Cmd cmd;
        if (!ring.tryPop(cmd)) {
            std::this_thread::yield();
            continue;
        }
        const size_t p = cmd.ticket / kPerProducer;
        const uint64_t i = cmd.ticket % kPerProducer;
        ASSERT_LT(p, kProducers);
        ASSERT_EQ(i, next_expected[p]) << "producer " << p;
        ++next_expected[p];
        ++received;
    }
    for (auto &t : producers)
        t.join();

    SubmitRing::Cmd leftover;
    EXPECT_FALSE(ring.tryPop(leftover));
}

TEST(SubmitRing, CapacityRoundsUpAndFullRingRefuses)
{
    SubmitRing ring(3); // rounds up to 4
    EXPECT_EQ(ring.capacity(), 4u);
    for (int i = 0; i < 4; ++i) {
        SubmitRing::Cmd cmd;
        cmd.ticket = static_cast<uint64_t>(i);
        ASSERT_TRUE(ring.tryPush(std::move(cmd)));
    }
    SubmitRing::Cmd extra;
    EXPECT_FALSE(ring.tryPush(std::move(extra))); // full, not lost
    SubmitRing::Cmd out;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out.ticket, 0u);
    SubmitRing::Cmd again;
    EXPECT_TRUE(ring.tryPush(std::move(again))); // slot recycled
}

// --------------------------------------------- async vs serial bit-equal --

TEST(AsyncFrontEnd, ConcurrentSubmitStreamsBitEqualSerialEveryFormat)
{
    const Transformer model(tinyConfig());
    const auto reqs = makeRequests(12);
    constexpr size_t kProducers = 4;

    for (const char *fmt : kFormats) {
        SCOPED_TRACE(fmt);
        const QuantConfig qc = QuantConfig::fromFormat(fmt);
        EngineOptions opts;
        opts.max_batch = 3; // forces queueing + continuous batching

        // Golden: the synchronous engine, submitted in index order.
        ServingEngine golden(model, qc, opts);
        std::vector<size_t> gids;
        for (const auto &r : reqs)
            gids.push_back(golden.submit(r));
        golden.runToCompletion();

        // Async: kProducers threads race their disjoint slices in.
        AsyncFrontEnd fe(model, qc, opts);
        std::vector<uint64_t> tickets(reqs.size());
        std::vector<std::thread> producers;
        for (size_t p = 0; p < kProducers; ++p) {
            producers.emplace_back([&, p] {
                for (size_t i = p; i < reqs.size(); i += kProducers)
                    tickets[i] = fe.submit(reqs[i]);
            });
        }
        for (auto &t : producers)
            t.join();
        fe.drain();

        // Bit-identical streams: arrival order, batching composition
        // and admission order all differed from the golden run, and
        // none of it may leak into a single token.
        for (size_t i = 0; i < reqs.size(); ++i) {
            const RequestStats &a = fe.stats(tickets[i]);
            const RequestStats &g = golden.stats(gids[i]);
            EXPECT_EQ(a.outcome, RequestOutcome::kCompleted);
            ASSERT_EQ(a.generated.size(), g.generated.size()) << "req " << i;
            for (size_t t = 0; t < g.generated.size(); ++t)
                ASSERT_EQ(a.generated[t], g.generated[t])
                    << "req " << i << " token " << t;
        }

        // Post-drain the engine must be idle and clean: no leaked
        // pages, invariants audited across pool/index/scheduler.
        EXPECT_TRUE(fe.auditInvariants());
        EXPECT_EQ(fe.engine().kvBytesLive(), 0u);
        EXPECT_EQ(fe.engine().activeRequests(), 0u);
        EXPECT_EQ(fe.engineStats().total_generated,
                  golden.engineStats().total_generated);
    }
}

TEST(AsyncFrontEnd, NextTokenStreamsTheExactFinalSequence)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 2;
    AsyncFrontEnd fe(model, qc, opts);

    const auto reqs = makeRequests(4);
    std::vector<uint64_t> tickets;
    for (const auto &r : reqs)
        tickets.push_back(fe.submit(r));

    // Consume each stream token-by-token from its own thread, racing
    // the engine's publication. The delivered sequence must equal the
    // final stats' generated sequence exactly (no gap, no duplicate,
    // no reorder).
    std::vector<std::vector<int>> delivered(tickets.size());
    std::vector<std::thread> consumers;
    for (size_t i = 0; i < tickets.size(); ++i) {
        consumers.emplace_back([&, i] {
            int tok = 0;
            while (fe.nextToken(tickets[i], &tok))
                delivered[i].push_back(tok);
        });
    }
    for (auto &t : consumers)
        t.join();
    fe.drain();

    for (size_t i = 0; i < tickets.size(); ++i) {
        EXPECT_EQ(fe.wait(tickets[i]), RequestOutcome::kCompleted);
        EXPECT_EQ(delivered[i], fe.stats(tickets[i]).generated);
    }
}

// ---------------------------------------------------------- cancellation --

TEST(AsyncFrontEnd, ConcurrentCancelDeliversBitExactPrefix)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP8");
    EngineOptions opts;
    opts.max_batch = 2;

    // Golden full (uncancelled) streams.
    ServeRequest base;
    base.prompt = tokenRamp(24, 5);
    base.max_new_tokens = 24;
    ServingEngine golden(model, qc, opts);
    const size_t gid = golden.submit(base);
    golden.runToCompletion();
    const std::vector<int> full = golden.stats(gid).generated;
    ASSERT_EQ(full.size(), base.max_new_tokens);

    // Submit many copies; a racing canceller thread kills every other
    // one at staggered points while producers are still submitting.
    constexpr size_t kCopies = 8;
    AsyncFrontEnd fe(model, qc, opts);
    std::vector<uint64_t> tickets(kCopies);
    std::atomic<size_t> submitted{0};
    std::thread producer([&] {
        for (size_t i = 0; i < kCopies; ++i) {
            tickets[i] = fe.submit(base);
            submitted.store(i + 1, std::memory_order_release);
        }
    });
    std::thread canceller([&] {
        for (size_t i = 0; i < kCopies; i += 2) {
            while (submitted.load(std::memory_order_acquire) <= i)
                std::this_thread::yield();
            fe.cancel(tickets[i]); // races admission, decode, completion
        }
    });
    producer.join();
    canceller.join();
    fe.drain();

    for (size_t i = 0; i < kCopies; ++i) {
        const RequestStats &rs = fe.stats(tickets[i]);
        if (i % 2 == 1) {
            EXPECT_EQ(rs.outcome, RequestOutcome::kCompleted);
        }
        // A cancel can lose the race and complete; either way every
        // delivered token must be a bit-exact prefix of the full
        // stream.
        ASSERT_LE(rs.generated.size(), full.size());
        for (size_t t = 0; t < rs.generated.size(); ++t)
            ASSERT_EQ(rs.generated[t], full[t]) << "copy " << i;
        if (rs.outcome == RequestOutcome::kCompleted)
            EXPECT_EQ(rs.generated.size(), full.size());
        else
            EXPECT_EQ(rs.outcome, RequestOutcome::kCancelled);
    }
    EXPECT_TRUE(fe.auditInvariants());
    EXPECT_EQ(fe.engine().kvBytesLive(), 0u);

    // Cancel after completion reports false (the request already won).
    EXPECT_FALSE(fe.cancel(tickets[1]));
    // Unknown tickets are refused, not crashed on.
    EXPECT_FALSE(fe.cancel(9999));
}

// ---------------------------------------------------------- backpressure --

TEST(AsyncFrontEnd, TinyRingBackpressuresWithoutLosingRequests)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("BF16");
    EngineOptions opts;
    opts.max_batch = 2;
    AsyncOptions async;
    async.ring_capacity = 2; // every burst overflows the ring

    AsyncFrontEnd fe(model, qc, opts, async);
    const auto reqs = makeRequests(10);
    std::vector<uint64_t> tickets(reqs.size());
    std::vector<std::thread> producers;
    constexpr size_t kProducers = 5;
    for (size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (size_t i = p; i < reqs.size(); i += kProducers)
                tickets[i] = fe.submit(reqs[i]);
        });
    }
    for (auto &t : producers)
        t.join();
    fe.drain();

    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(fe.wait(tickets[i]), RequestOutcome::kCompleted);
        EXPECT_FALSE(fe.stats(tickets[i]).generated.empty());
    }
    EXPECT_TRUE(fe.auditInvariants());
}

// ------------------------------------------------- drain/reuse semantics --

TEST(AsyncFrontEnd, DrainIsReusableAndIdleDrainReturnsImmediately)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("BF16");
    AsyncFrontEnd fe(model, qc, EngineOptions{});

    fe.drain(); // nothing submitted: must not hang
    EXPECT_EQ(fe.engineStats().total_generated, 0u);

    ServeRequest r;
    r.prompt = tokenRamp(12, 3);
    r.max_new_tokens = 5;
    const uint64_t t1 = fe.submit(r);
    fe.drain();
    EXPECT_EQ(fe.stats(t1).generated.size(), 5u);

    // The front end accepts new work after a drain (busy periods are
    // not one-shot).
    const uint64_t t2 = fe.submit(r);
    fe.drain();
    EXPECT_EQ(fe.stats(t2).generated.size(), 5u);
    EXPECT_EQ(fe.stats(t2).generated, fe.stats(t1).generated);
    EXPECT_EQ(fe.engineStats().total_generated, 10u);
}

TEST(AsyncFrontEnd, DestructorDrainsOutstandingWork)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("BF16");
    ServeRequest r;
    r.prompt = tokenRamp(10, 4);
    r.max_new_tokens = 6;

    {
        AsyncFrontEnd fe(model, qc, EngineOptions{});
        fe.submit(r);
        fe.submit(r);
        // Destroyed with both requests in flight: the destructor must
        // finish them (nothing dropped), then join the engine thread.
    }
    SUCCEED();
}

// ------------------------------------------------------ decode worker pool --

TEST(WorkerPoolDecode, MultiThreadStreamsBitEqualSerialEveryFormat)
{
    const Transformer model(tinyConfig());
    const auto reqs = makeRequests(8);

    for (const char *fmt : kFormats) {
        SCOPED_TRACE(fmt);
        const QuantConfig qc = QuantConfig::fromFormat(fmt);

        EngineOptions serial;
        serial.max_batch = 4; // batched decode rows to partition
        ServingEngine golden(model, qc, serial);
        std::vector<size_t> gids;
        for (const auto &r : reqs)
            gids.push_back(golden.submit(r));
        golden.runToCompletion();

        EngineOptions threaded = serial;
        threaded.num_threads = 3;
        ServingEngine engine(model, qc, threaded);
        std::vector<size_t> ids;
        for (const auto &r : reqs)
            ids.push_back(engine.submit(r));
        engine.runToCompletion();

        // Threading is a throughput decision, never a numerics
        // decision: each batch row ran its exact serial arithmetic on
        // exactly one worker, so streams are bit-identical.
        for (size_t i = 0; i < reqs.size(); ++i) {
            const RequestStats &a = engine.stats(ids[i]);
            const RequestStats &g = golden.stats(gids[i]);
            ASSERT_EQ(a.generated.size(), g.generated.size()) << "req " << i;
            for (size_t t = 0; t < g.generated.size(); ++t)
                ASSERT_EQ(a.generated[t], g.generated[t])
                    << "req " << i << " token " << t;
        }
        EXPECT_TRUE(engine.auditInvariants());
        EXPECT_EQ(engine.kvBytesLive(), 0u);
    }
}

TEST(WorkerPoolDecode, AsyncEngineWithWorkersBitEqualToo)
{
    // The full stack at once: concurrent producers + worker-pool
    // decode vs the plain serial engine.
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    const auto reqs = makeRequests(6);

    EngineOptions serial;
    serial.max_batch = 3;
    ServingEngine golden(model, qc, serial);
    std::vector<size_t> gids;
    for (const auto &r : reqs)
        gids.push_back(golden.submit(r));
    golden.runToCompletion();

    EngineOptions threaded = serial;
    threaded.num_threads = 2;
    AsyncFrontEnd fe(model, qc, threaded);
    std::vector<uint64_t> tickets(reqs.size());
    std::vector<std::thread> producers;
    for (size_t p = 0; p < 2; ++p) {
        producers.emplace_back([&, p] {
            for (size_t i = p; i < reqs.size(); i += 2)
                tickets[i] = fe.submit(reqs[i]);
        });
    }
    for (auto &t : producers)
        t.join();
    fe.drain();

    for (size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(fe.stats(tickets[i]).generated,
                  golden.stats(gids[i]).generated)
            << "req " << i;
    EXPECT_TRUE(fe.auditInvariants());
}

// --------------------------------------------------------- WorkerPool unit --

TEST(WorkerPool, ParallelForCoversEveryIndexExactlyOnce)
{
    WorkerPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto &h : hits)
        h.store(0, std::memory_order_relaxed);

    // Repeated jobs through the same pool: exercises the job-sequence
    // hand-off (a straggler from job k must never run an index of
    // job k+1).
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(kN, [&](size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 50) << "index " << i;
}

TEST(WorkerPool, SingleThreadAndSingleItemRunSerial)
{
    WorkerPool serial(1);
    EXPECT_EQ(serial.threads(), 1u);
    std::vector<int> order;
    serial.parallelFor(5, [&](size_t i) {
        order.push_back(static_cast<int>(i)); // unsynchronized: must be
                                              // caller-thread only
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));

    WorkerPool pool(3);
    std::vector<int> one;
    pool.parallelFor(1, [&](size_t i) { one.push_back(static_cast<int>(i)); });
    EXPECT_EQ(one, std::vector<int>{0});
}

} // namespace
} // namespace mxplus
