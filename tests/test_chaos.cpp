/**
 * @file
 * Deterministic chaos harness for the serving engine: N seeded
 * episodes per format, each driving a mixed shared-prefix workload
 * through a tight budget, over-admission, aging, deadlines, random
 * client cancels and a FaultInjector firing every site (forced pool
 * exhaustion, forced preemption, clock skew, eviction storms, page
 * corruption). After every episode the harness asserts the PR6
 * robustness contract:
 *
 *  - every surviving (completed) stream is bit-equal to a fault-free
 *    golden run; cancelled/timed-out streams are bit-exact prefixes;
 *  - every request reached exactly one terminal state;
 *  - pool refcounts return to the prefix cache alone (and to zero
 *    after clearing it), the reservation ledger sums to zero, and the
 *    cross-layer debug audits (pool, trie, caches, ledger) all pass;
 *  - every injected page corruption is accounted for: detected by a
 *    checksum, or evicted before any adoption could reach it — never
 *    silently served.
 *
 * Reproduction: a failing episode writes chaos_failure_<fmt>_<seed>.txt
 * (seed, fault schedule, repro command) into the working directory —
 * CI uploads it as an artifact. MXPLUS_CHAOS_SEED=<n> reruns a single
 * seed; MXPLUS_CHAOS_SEEDS=a,b,c,... widens the sweep (the ASan job
 * uses this).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "model/layers.h"
#include "model/transformer.h"
#include "serve/fault.h"
#include "serve/serving_engine.h"

namespace mxplus {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig cfg = simLlama31_8b();
    cfg.n_layers = 2;
    return cfg;
}

std::vector<int>
tokenRamp(size_t n, int stride)
{
    std::vector<int> t(n);
    for (size_t i = 0; i < n; ++i)
        t[i] = static_cast<int>((7 + i * stride) % 251);
    return t;
}

std::vector<uint64_t>
chaosSeeds()
{
    if (const char *one = std::getenv("MXPLUS_CHAOS_SEED"))
        return {std::strtoull(one, nullptr, 10)};
    if (const char *many = std::getenv("MXPLUS_CHAOS_SEEDS")) {
        std::vector<uint64_t> seeds;
        const std::string s(many);
        size_t pos = 0;
        while (pos < s.size()) {
            size_t next = s.find(',', pos);
            if (next == std::string::npos)
                next = s.size();
            if (next > pos) {
                seeds.push_back(std::strtoull(
                    s.substr(pos, next - pos).c_str(), nullptr, 10));
            }
            pos = next + 1;
        }
        if (!seeds.empty())
            return seeds;
    }
    return {1, 2, 3};
}

/**
 * Deterministic mixed workload from one seed: two shared-prefix groups
 * plus singles, varied priorities and sampling modes, a couple of
 * requests carrying deadlines. Every request fits the chaos budget, so
 * kRejected must never appear — any rejection is a ledger bug.
 */
std::vector<ServeRequest>
chaosWorkload(uint64_t seed)
{
    Rng rng(seed * 0x9E3779B9u + 17);
    std::vector<ServeRequest> reqs;
    const auto head_a = tokenRamp(64, 3);
    const auto head_b = tokenRamp(64, 5);
    for (size_t r = 0; r < 10; ++r) {
        ServeRequest req;
        if (r < 3) {
            req.prompt = head_a;
        } else if (r < 6) {
            req.prompt = head_b;
        }
        const size_t tail = 8 + rng.uniformInt(17); // 8..24
        for (size_t i = 0; i < tail; ++i) {
            req.prompt.push_back(
                static_cast<int>((31 + 13 * r + 7 * i) % 251));
        }
        req.max_new_tokens = 4 + rng.uniformInt(7); // 4..10
        req.priority = static_cast<int>(rng.uniformInt(4)) - 1;
        if (r % 3 == 1) {
            req.temperature = 0.8; // rng reset must survive restarts
            req.seed = 1000 + r;
        }
        if (r == 2)
            req.deadline_ms = 60.0; // 60 virtual steps end-to-end
        if (r == 7)
            req.ttft_deadline_ms = 40.0;
        reqs.push_back(std::move(req));
    }
    return reqs;
}

std::string
artifactName(const char *fmt, uint64_t seed)
{
    std::string clean;
    for (const char *p = fmt; *p != '\0'; ++p)
        clean.push_back(*p == '+' ? 'p' : *p);
    return "chaos_failure_" + clean + "_" + std::to_string(seed) +
        ".txt";
}

void
writeFailureArtifact(const char *fmt, uint64_t seed,
                     const FaultInjector &fault)
{
    std::ofstream out(artifactName(fmt, seed));
    out << "chaos episode FAILED\n"
        << "format: " << fmt << "\n"
        << "seed:   " << seed << "\n"
        << "repro:  MXPLUS_CHAOS_SEED=" << seed
        << " ./test_chaos --gtest_filter='Chaos.*'\n"
        << "fault schedule (step: site(detail)):\n"
        << fault.scheduleString();
}

bool
isPrefixOf(const std::vector<int> &partial, const std::vector<int> &full)
{
    if (partial.size() > full.size())
        return false;
    return std::equal(partial.begin(), partial.end(), full.begin());
}

void
runEpisode(const Transformer &model, const char *fmt, uint64_t seed,
           bool compress = false)
{
    SCOPED_TRACE(std::string(fmt) + " seed " + std::to_string(seed) +
                 (compress ? " (compressed)" : ""));
    const bool failed_before = ::testing::Test::HasFailure();
    const QuantConfig qc = QuantConfig::fromFormat(fmt);
    const auto reqs = chaosWorkload(seed);

    // Golden run: unbudgeted, fault-free, deadline-free — the
    // reference streams every chaos survivor must reproduce exactly.
    ServingEngine golden(model, qc, 4);
    std::vector<size_t> gids;
    for (ServeRequest req : reqs) {
        req.deadline_ms = 0.0;
        req.ttft_deadline_ms = 0.0;
        gids.push_back(golden.submit(std::move(req)));
    }
    golden.runToCompletion();

    // Chaos run: tight budget + 2x over-admission (real preemption),
    // aging, prefix sharing, virtual clock, a bounded queue, every
    // fault site armed, and random client cancels between steps.
    FaultInjector::Config fcfg;
    fcfg.seed = seed;
    fcfg.p_pool_exhausted = 0.10;
    fcfg.p_force_preempt = 0.10;
    fcfg.p_clock_skew = 0.10;
    fcfg.skew_ms_max = 8.0;
    fcfg.p_evict_storm = 0.05;
    fcfg.p_corrupt_page = 0.15;
    FaultInjector fault(fcfg);

    EngineOptions opts;
    opts.max_batch = 4;
    opts.kv_budget_tokens = 160; // 5 pages/layer = 10 budget pages
    opts.over_admission = 2.0;
    opts.aging_rate = 0.05;
    opts.prefill_chunk = 16;
    opts.prefix_cache_tokens = 128;
    opts.step_time_ms = 1.0;
    opts.queue_cap = 8;
    opts.shed_policy = ShedPolicy::kLowestPriority;
    opts.checksum_pages = true;
    opts.compress_frozen_pages = compress;
    opts.fault = &fault;
    ServingEngine engine(model, qc, opts);

    std::vector<size_t> ids;
    for (const ServeRequest &req : reqs)
        ids.push_back(engine.submit(req));

    Rng cancel_rng(seed * 7919u + 13);
    const size_t kMaxSteps = 20000; // watchdog: fail loudly, not hang
    size_t steps = 0;
    while (engine.step()) {
        if (++steps >= kMaxSteps)
            break;
        if (cancel_rng.uniform() < 0.02)
            engine.cancel(ids[cancel_rng.uniformInt(ids.size())]);
    }
    ASSERT_LT(steps, kMaxSteps) << "chaos episode failed to drain";

    // Terminal-state closure: exactly one outcome each, streams
    // bit-exact (full or prefix), nothing pending, nothing rejected.
    size_t completed = 0;
    for (size_t r = 0; r < reqs.size(); ++r) {
        const RequestStats &rs = engine.stats(ids[r]);
        const std::vector<int> &ref = golden.stats(gids[r]).generated;
        EXPECT_TRUE(rs.finished) << "request " << r;
        EXPECT_NE(rs.outcome, RequestOutcome::kPending)
            << "request " << r;
        EXPECT_NE(rs.outcome, RequestOutcome::kRejected)
            << "request " << r << " fits the budget";
        switch (rs.outcome) {
        case RequestOutcome::kCompleted:
            ++completed;
            EXPECT_EQ(rs.generated, ref) << "request " << r;
            break;
        case RequestOutcome::kCancelled:
        case RequestOutcome::kTimedOut:
            EXPECT_TRUE(isPrefixOf(rs.generated, ref))
                << "request " << r;
            break;
        case RequestOutcome::kShed:
            EXPECT_TRUE(rs.generated.empty()) << "request " << r;
            break;
        default:
            break;
        }
    }
    const EngineStats &es = engine.engineStats();
    EXPECT_EQ(completed + es.shed_requests + es.timed_out_requests +
                  es.cancelled_requests,
              reqs.size());
    EXPECT_DOUBLE_EQ(es.goodput_ok_fraction,
                     static_cast<double>(completed) /
                         static_cast<double>(reqs.size()));

    // Resource closure: ledger at zero, queue and slots empty, only
    // the prefix cache's own references keep pages live — and the
    // cross-layer structural audits hold.
    EXPECT_EQ(engine.activeRequests(), 0u);
    EXPECT_EQ(engine.queuedRequests(), 0u);
    EXPECT_EQ(engine.reservedPages(), 0u);
    EXPECT_TRUE(engine.auditInvariants());
    const PrefixIndex *idx = engine.prefixIndex();
    ASSERT_NE(idx, nullptr);
    EXPECT_EQ(engine.pool().usedPages(), idx->heldPages());
    engine.clearPrefixCache();
    EXPECT_EQ(engine.pool().usedPages(), 0u);
    EXPECT_EQ(engine.kvBytesLive(), 0u);
    EXPECT_TRUE(engine.auditInvariants());

    // Corruption closure: with the index drained, every injected bit
    // flip was either caught by a checksum or evicted untouched —
    // nothing resident, nothing silently served (the bit-equal checks
    // above are the "never served" half of that claim).
    EXPECT_EQ(idx->undetectedResidentCorruptions(), 0u);
    EXPECT_EQ(idx->injectedCorruptions(),
              idx->detectedCorruptions() +
                  idx->evictedUndetectedCorruptions());
    EXPECT_GE(es.checksum_failures, idx->detectedCorruptions());

    if (compress) {
        // The episode must actually have exercised the codec path —
        // published spans compressed, adoptions decoded — so the
        // bit-equal checks above genuinely covered decode-on-read.
        EXPECT_GT(engine.pool().compressedRatio(), 1.0);
        EXPECT_GT(engine.pool().codecDecodeCalls(), 0u);
    }

    if (fault.events().empty()) {
        // With every site armed at these rates an episode with zero
        // fired faults means the schedule is broken, not lucky.
        ADD_FAILURE() << "no faults fired in " << steps << " steps";
    }

    // A failing episode leaves a repro artifact next to the binary
    // (seed + the exact fault schedule that fired); CI uploads it.
    if (!failed_before && ::testing::Test::HasFailure())
        writeFailureArtifact(fmt, seed, fault);
}

TEST(Chaos, EpisodesSurviveEveryFaultSiteBitExactly)
{
    const Transformer model(tinyConfig());
    const auto seeds = chaosSeeds();
    for (const char *fmt : {"BF16", "MXFP8", "MXFP4+"}) {
        for (const uint64_t seed : seeds)
            runEpisode(model, fmt, seed);
    }
}

TEST(Chaos, CompressedEpisodesSurviveEveryFaultSiteBitExactly)
{
    // One seed per format with frozen-page compression armed: the
    // decode-on-read path must uphold the same bit-exactness and
    // corruption-closure contract under every fault site — including
    // injected bit flips that now land in compressed streams and are
    // caught by the undecodable-page checksum sentinel.
    const Transformer model(tinyConfig());
    const uint64_t seed = chaosSeeds().front();
    for (const char *fmt : {"BF16", "MXFP8", "MXFP4+"})
        runEpisode(model, fmt, seed, /*compress=*/true);
}

TEST(Chaos, EpisodesAreDeterministicPerSeed)
{
    // The property every chaos failure report depends on: the same
    // seed replays the same terminal states and the same streams.
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    const uint64_t seed = chaosSeeds().front();
    const auto reqs = chaosWorkload(seed);

    auto run = [&](std::vector<RequestOutcome> *outcomes,
                   std::vector<std::vector<int>> *streams) {
        FaultInjector::Config fcfg;
        fcfg.seed = seed;
        fcfg.p_pool_exhausted = 0.10;
        fcfg.p_force_preempt = 0.10;
        fcfg.p_clock_skew = 0.10;
        fcfg.p_evict_storm = 0.05;
        fcfg.p_corrupt_page = 0.15;
        FaultInjector fault(fcfg);
        EngineOptions opts;
        opts.max_batch = 4;
        opts.kv_budget_tokens = 160;
        opts.over_admission = 2.0;
        opts.aging_rate = 0.05;
        opts.prefill_chunk = 16;
        opts.prefix_cache_tokens = 128;
        opts.step_time_ms = 1.0;
        opts.queue_cap = 8;
        opts.shed_policy = ShedPolicy::kLowestPriority;
        opts.fault = &fault;
        ServingEngine engine(model, qc, opts);
        std::vector<size_t> ids;
        for (const ServeRequest &req : reqs)
            ids.push_back(engine.submit(req));
        Rng cancel_rng(seed * 7919u + 13);
        size_t steps = 0;
        while (engine.step() && ++steps < 20000) {
            if (cancel_rng.uniform() < 0.02)
                engine.cancel(ids[cancel_rng.uniformInt(ids.size())]);
        }
        for (const size_t id : ids) {
            outcomes->push_back(engine.stats(id).outcome);
            streams->push_back(engine.stats(id).generated);
        }
        return fault.scheduleString();
    };

    std::vector<RequestOutcome> out_a, out_b;
    std::vector<std::vector<int>> str_a, str_b;
    const std::string sched_a = run(&out_a, &str_a);
    const std::string sched_b = run(&out_b, &str_b);
    EXPECT_EQ(sched_a, sched_b);
    EXPECT_EQ(out_a, out_b);
    EXPECT_EQ(str_a, str_b);
}

} // namespace
} // namespace mxplus
