/**
 * @file
 * Tests for the industry BFP baselines (MSFP, SMX), the top-k variant,
 * channel reordering, and the format quantizer factory.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "baselines/format_quantizers.h"
#include "baselines/msfp.h"
#include "baselines/smx.h"
#include "common/rng.h"
#include "mx/reorder.h"
#include "mx/topk.h"
#include "tensor/stats.h"

namespace mxplus {
namespace {

TEST(Msfp, AvgBitsMatchPaper)
{
    // Section 2: MSFP12 averages 4.5 bits/element (4 + 8/16).
    EXPECT_DOUBLE_EQ(MsfpQuantizer(12).avgBitsPerElement(), 4.5);
    EXPECT_DOUBLE_EQ(MsfpQuantizer(14).avgBitsPerElement(), 6.5);
    EXPECT_DOUBLE_EQ(MsfpQuantizer(16).avgBitsPerElement(), 8.5);
}

TEST(Msfp, SharedExponentGrid)
{
    // Block max 1.5 -> shared exp 0; MSFP12 mantissa step = 2^(0-3+1)
    // = 0.25 with max code 7 -> max magnitude 1.75.
    const MsfpQuantizer q(12);
    float block[4] = {1.5f, 0.3f, -0.6f, 0.05f};
    float out[4];
    q.fakeQuantizeBlock(block, out, 4);
    EXPECT_FLOAT_EQ(out[0], 1.5f);
    EXPECT_FLOAT_EQ(out[1], 0.25f);
    EXPECT_FLOAT_EQ(out[2], -0.5f);
    EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(Msfp, NoImplicitBitMeansCoarserThanMxfp4)
{
    // With an outlier block, MSFP12 (4.5 avg bits) should have at least
    // the error of MXFP4-style private-exponent representation for small
    // values: everything below amax/16 quantizes to 0 or one step.
    const MsfpQuantizer q(12);
    float block[16] = {};
    block[0] = 8.0f;
    block[1] = 0.4f;
    float out[16];
    q.fakeQuantizeBlock(block, out, 16);
    EXPECT_FLOAT_EQ(out[1], 0.0f); // 0.4 < step 1.0
}

TEST(Msfp, ZeroBlock)
{
    const MsfpQuantizer q(14);
    float zeros[16] = {};
    float out[16] = {1};
    q.fakeQuantizeBlock(zeros, out, 16);
    for (float v : out)
        EXPECT_EQ(v, 0.0f);
}

TEST(Smx, AvgBitsMatchPaper)
{
    EXPECT_DOUBLE_EQ(SmxQuantizer(4).avgBitsPerElement(), 4.0);
    EXPECT_DOUBLE_EQ(SmxQuantizer(6).avgBitsPerElement(), 6.0);
    EXPECT_DOUBLE_EQ(SmxQuantizer(9).avgBitsPerElement(), 9.0);
}

TEST(Smx, MicroexponentRefinesSmallPairs)
{
    // A pair whose max sits one binade below the group max gets a one-bit
    // finer grid than MSFP would give it.
    const SmxQuantizer smx(6); // 4 mantissa bits
    const MsfpQuantizer msfp(13); // 4 mantissa bits, same element width
    float block[4] = {4.0f, 3.9f, 1.3f, 1.1f};
    float out_smx[4];
    float out_msfp[4];
    smx.fakeQuantizeBlock(block, out_smx, 4);
    msfp.fakeQuantizeBlock(block, out_msfp, 4);
    // Pair (1.3, 1.1) has microexponent 1 -> step 0.25 instead of 0.5.
    EXPECT_LE(std::fabs(out_smx[2] - 1.3), std::fabs(out_msfp[2] - 1.3));
    EXPECT_LE(std::fabs(out_smx[3] - 1.1), std::fabs(out_msfp[3] - 1.1));
    EXPECT_LT(mse(block, out_smx, 4), mse(block, out_msfp, 4) + 1e-12);
}

TEST(Smx, QuantizeIdempotent)
{
    Rng rng(55);
    const SmxQuantizer q(6);
    for (int trial = 0; trial < 200; ++trial) {
        float block[16];
        for (auto &v : block)
            v = static_cast<float>(rng.gaussian(0.0, 2.0));
        float once[16];
        float twice[16];
        q.fakeQuantizeBlock(block, once, 16);
        q.fakeQuantizeBlock(once, twice, 16);
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(once[i], twice[i]);
    }
}

TEST(TopK, KZeroEqualsMxfp4)
{
    Rng rng(66);
    const TopKQuantizer topk(0);
    const MxQuantizer mx(ElementFormat::E2M1, MxMode::Standard);
    for (int trial = 0; trial < 100; ++trial) {
        float block[32];
        for (auto &v : block)
            v = static_cast<float>(rng.gaussian(0.0, 1.0));
        float a[32];
        float b[32];
        topk.fakeQuantizeBlock(block, a, 32);
        mx.fakeQuantizeBlock(block, b, 32);
        for (int i = 0; i < 32; ++i)
            EXPECT_EQ(a[i], b[i]);
    }
}

TEST(TopK, MonotoneInK)
{
    // More elements in MXFP6 can only reduce block MSE.
    Rng rng(67);
    for (int trial = 0; trial < 100; ++trial) {
        float block[32];
        for (auto &v : block) {
            v = static_cast<float>(rng.gaussian(0.0, 1.0));
            if (rng.uniform() < 0.1)
                v *= 15.0f;
        }
        double prev = 1e30;
        for (int k : {0, 1, 2, 4, 32}) {
            const TopKQuantizer q(k);
            float out[32];
            q.fakeQuantizeBlock(block, out, 32);
            const double e = mse(block, out, 32);
            EXPECT_LE(e, prev + 1e-12) << "k=" << k;
            prev = e;
        }
    }
}

TEST(Reorder, PermutationIsValid)
{
    std::vector<size_t> counts = {5, 0, 9, 1, 2, 7, 0, 0};
    const auto perm = buildReorderPermutation(counts, 4);
    ASSERT_EQ(perm.size(), counts.size());
    std::set<size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), counts.size()); // a true permutation
    // Block leaders (positions 0 and 4) are the two outlier-heaviest.
    EXPECT_EQ(perm[0], 2u); // count 9
    EXPECT_EQ(perm[4], 5u); // count 7
}

TEST(Reorder, ScattersOutliersAcrossBlocks)
{
    // Build activations whose outliers concentrate in a few channels (the
    // paper's Fig. 4 structure); after reordering, the fraction of
    // outlier-bearing blocks with more than one outlier must drop.
    Rng rng(68);
    const size_t rows = 64;
    const size_t cols = 128;
    Matrix acts(rows, cols);
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
            float v = static_cast<float>(rng.gaussian(0.0, 0.1));
            // Channels 0..3 carry outliers; they land in the same block.
            if (c < 4 && rng.uniform() < 0.8)
                v = static_cast<float>(rng.gaussian(0.0, 5.0));
            acts.at(r, c) = v;
        }
    }
    const double before =
        multiOutlierBlockFraction(acts.data(), rows, cols);
    const auto counts = countChannelOutliers(acts.data(), rows, cols);
    const auto perm = buildReorderPermutation(counts);
    Matrix reordered(rows, cols);
    applyColumnPermutation(acts.data(), reordered.data(), rows, cols, perm);
    const double after =
        multiOutlierBlockFraction(reordered.data(), rows, cols);
    EXPECT_LT(after, before);
    EXPECT_LT(after, 0.1);
}

TEST(FormatFactory, AllKnownNamesConstruct)
{
    for (const auto &name : knownQuantizerNames()) {
        const auto q = makeQuantizerByName(name);
        ASSERT_NE(q, nullptr) << name;
        // Identity sanity: quantizing zeros returns zeros.
        Matrix zeros(2, 64, 0.0f);
        Matrix out = q->quantized(zeros);
        for (size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out.data()[i], 0.0f) << name;
    }
}

TEST(FormatFactory, QualityOrderingOnOutlierData)
{
    // Coarse sanity of the whole format zoo: on outlier-bearing data the
    // SQNR ordering must be MXFP4 < MXFP4+ <= MXFP4++ and
    // MXFP4 < MXFP6 < MXFP8.
    Rng rng(69);
    Matrix data(16, 256);
    for (size_t i = 0; i < data.size(); ++i) {
        data.data()[i] = static_cast<float>(rng.gaussian(0.0, 0.5));
        if (rng.uniform() < 0.03)
            data.data()[i] *= 30.0f;
    }
    auto sqnr = [&](const char *name) {
        const auto q = makeQuantizerByName(name);
        Matrix out = q->quantized(data);
        return sqnrDb(data.data(), out.data(), data.size());
    };
    EXPECT_LT(sqnr("MXFP4"), sqnr("MXFP4+"));
    EXPECT_LE(sqnr("MXFP4+"), sqnr("MXFP4++") + 1e-9);
    EXPECT_LT(sqnr("MXFP4"), sqnr("MXFP6"));
    EXPECT_LT(sqnr("MXFP6"), sqnr("MXFP8"));
    EXPECT_LT(sqnr("MSFP12"), sqnr("MXFP4+"));
    EXPECT_LT(sqnr("SMX4"), sqnr("MXFP4+"));
}

TEST(FormatFactory, UnknownNameFatals)
{
    EXPECT_EXIT(makeQuantizerByName("FP99"),
                ::testing::ExitedWithCode(1), "unknown quantizer");
}

} // namespace
} // namespace mxplus
