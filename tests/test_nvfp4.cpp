/**
 * @file
 * Tests for the NVFP4 / NVFP4+ quantizers (Section 8.2).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "mx/nvfp4.h"
#include "tensor/stats.h"

namespace mxplus {
namespace {

TEST(Nvfp4, ZeroBlock)
{
    const Nvfp4Quantizer q(false);
    float zeros[16] = {};
    float out[16] = {1};
    q.fakeQuantizeBlock(zeros, out, 16);
    for (float v : out)
        EXPECT_EQ(v, 0.0f);
}

TEST(Nvfp4, BmMapsNearFp4Max)
{
    // The E4M3 scale is amax/6, so the BM lands near 6 on the FP4 grid.
    const Nvfp4Quantizer q(false);
    float block[16] = {};
    block[3] = 48.0f; // scale = 8 exactly -> BM/scale = 6
    block[7] = 7.5f;
    float out[16];
    q.fakeQuantizeBlock(block, out, 16);
    EXPECT_FLOAT_EQ(out[3], 48.0f);
    EXPECT_FLOAT_EQ(out[7], 8.0f); // 7.5/8 = 0.9375 -> 1.0 -> 8
}

TEST(Nvfp4, PlusBmExtendedPrecision)
{
    const Nvfp4Quantizer plus(true);
    const Nvfp4Quantizer base(false);
    Rng rng(42);
    int improved = 0;
    double total_p = 0.0;
    double total_b = 0.0;
    for (int trial = 0; trial < 300; ++trial) {
        float block[16];
        for (auto &v : block)
            v = static_cast<float>(rng.gaussian(0.0, 1.0));
        block[rng.uniformInt(16)] *= 20.0f;
        float out_p[16];
        float out_b[16];
        plus.fakeQuantizeBlock(block, out_p, 16);
        base.fakeQuantizeBlock(block, out_b, 16);
        const double mp = mse(block, out_p, 16);
        const double mb = mse(block, out_b, 16);
        EXPECT_LE(mp, mb + 1e-12);
        if (mp < mb)
            ++improved;
        total_p += mp;
        total_b += mb;
    }
    // The extension helps whenever E4M3 scale rounding pushes the BM off
    // the 6.0 grid point; when the BM lands exactly on 6.0 both encodings
    // agree, so only a fraction of blocks improves — but the aggregate
    // error must drop strictly.
    EXPECT_GT(improved, 20);
    EXPECT_LT(total_p, total_b);
}

TEST(Nvfp4, PlusFallbackOnTinyScale)
{
    // Blocks with a tiny amax (scale code <= 0b00000010) keep the plain
    // NVFP4 encoding.
    const Nvfp4Quantizer plus(true);
    float block[16] = {};
    block[0] = 1e-3f;
    const Nvfp4Block enc = plus.encodeBlock(block, 16);
    EXPECT_FALSE(enc.bm_extended);
}

TEST(Nvfp4, EncodeDecodeMatchesFakeQuantize)
{
    Rng rng(77);
    for (bool is_plus : {false, true}) {
        const Nvfp4Quantizer q(is_plus);
        for (int trial = 0; trial < 300; ++trial) {
            float block[16];
            for (auto &v : block)
                v = static_cast<float>(rng.studentT(3.0));
            float fake[16];
            float dec[16];
            q.fakeQuantizeBlock(block, fake, 16);
            const Nvfp4Block enc = q.encodeBlock(block, 16);
            q.decodeBlock(enc, dec, 16);
            for (int i = 0; i < 16; ++i)
                EXPECT_EQ(fake[i], dec[i]) << q.name();
        }
    }
}

TEST(Nvfp4, AvgBits)
{
    EXPECT_DOUBLE_EQ(Nvfp4Quantizer(false).avgBitsPerElement(), 4.5);
    EXPECT_DOUBLE_EQ(Nvfp4Quantizer(true).avgBitsPerElement(), 4.75);
}

TEST(Nvfp4, NonPowerOfTwoScalesHandled)
{
    // Unlike MX, the E4M3 scale is not restricted to powers of two: a
    // block max of 5.0 gives scale 5/6 ~ 0.8333 -> quantized E4M3 0.8125.
    const Nvfp4Quantizer q(false);
    float block[16] = {};
    block[0] = 5.0f;
    const Nvfp4Block enc = q.encodeBlock(block, 16);
    const double scale = 0.8125;
    float out[16];
    q.decodeBlock(enc, out, 16);
    EXPECT_NEAR(out[0], 6.0 * scale, 1e-6);
}

} // namespace
} // namespace mxplus
