/**
 * @file
 * Request-lifecycle hardening tests: the terminal-state taxonomy
 * (completed / rejected / shed / timed_out / cancelled) and its
 * deprecated `rejected` alias, client cancellation from every phase —
 * including mid-prefix-adoption — TTFT and end-to-end deadlines on the
 * deterministic virtual step clock, bounded-queue load shedding under
 * both policies, shared-page checksum verification, the fault
 * injector's determinism contract, and the runToCompletion watchdog.
 *
 * Every non-completed exit is checked for CLEAN release: pool pages,
 * reservation-ledger entries and prefix-trie pins all return to their
 * idle state (ServingEngine::auditInvariants), and partial token
 * streams are always bit-exact prefixes of the unconstrained run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "model/layers.h"
#include "model/transformer.h"
#include "serve/fault.h"
#include "serve/serving_engine.h"

namespace mxplus {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig cfg = simLlama31_8b();
    cfg.n_layers = 2;
    return cfg;
}

std::vector<int>
tokenRamp(size_t n, int stride)
{
    std::vector<int> t(n);
    for (size_t i = 0; i < n; ++i)
        t[i] = static_cast<int>((7 + i * stride) % 251);
    return t;
}

std::vector<ServeRequest>
sharedPrefixRequests(size_t n, size_t shared_len, size_t tail_len,
                     size_t new_tokens)
{
    const auto head = tokenRamp(shared_len, 3);
    std::vector<ServeRequest> reqs(n);
    for (size_t r = 0; r < n; ++r) {
        reqs[r].prompt = head;
        for (size_t i = 0; i < tail_len; ++i) {
            reqs[r].prompt.push_back(
                static_cast<int>((41 + 11 * r + 5 * i) % 251));
        }
        reqs[r].max_new_tokens = new_tokens;
        reqs[r].temperature = 0.0;
    }
    return reqs;
}

/** True when @p partial is a (possibly complete) prefix of @p full. */
bool
isPrefixOf(const std::vector<int> &partial, const std::vector<int> &full)
{
    if (partial.size() > full.size())
        return false;
    return std::equal(partial.begin(), partial.end(), full.begin());
}

// ------------------------------------------------------------ taxonomy --

TEST(Lifecycle, OutcomeNamesAreStable)
{
    EXPECT_STREQ(outcomeName(RequestOutcome::kPending), "pending");
    EXPECT_STREQ(outcomeName(RequestOutcome::kCompleted), "completed");
    EXPECT_STREQ(outcomeName(RequestOutcome::kRejected), "rejected");
    EXPECT_STREQ(outcomeName(RequestOutcome::kShed), "shed");
    EXPECT_STREQ(outcomeName(RequestOutcome::kTimedOut), "timed_out");
    EXPECT_STREQ(outcomeName(RequestOutcome::kCancelled), "cancelled");
}

TEST(Lifecycle, RejectionSetsOutcome)
{
    // An exhausted-budget submit reports through the outcome taxonomy
    // (the pre-PR6 `rejected` bool is gone): terminal state, empty
    // stream, engine counter and goodput all agree.
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 2;
    opts.kv_budget_tokens = 64; // 2 pages/layer

    ServingEngine engine(model, qc, opts);
    ServeRequest ok;
    ok.prompt = tokenRamp(24, 3);
    ok.max_new_tokens = 8;
    ServeRequest too_big = ok;
    too_big.max_new_tokens = 64; // 88 tokens = 3 pages/layer > budget
    const size_t ok_id = engine.submit(ok);
    const size_t big_id = engine.submit(too_big);
    engine.runToCompletion();

    EXPECT_EQ(engine.stats(ok_id).outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(engine.stats(big_id).outcome, RequestOutcome::kRejected);
    EXPECT_TRUE(engine.stats(big_id).generated.empty());
    EXPECT_EQ(engine.engineStats().rejected_requests, 1u);
    EXPECT_DOUBLE_EQ(engine.engineStats().goodput_ok_fraction, 0.5);
    EXPECT_TRUE(engine.auditInvariants());
}

// -------------------------------------------------------- cancellation --

TEST(Lifecycle, CancelQueuedAndActiveReleasesEverything)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");

    // Golden run: no cancellation, same requests.
    std::vector<ServeRequest> reqs(3);
    for (size_t r = 0; r < reqs.size(); ++r) {
        reqs[r].prompt = tokenRamp(24, static_cast<int>(3 + r));
        reqs[r].max_new_tokens = 40;
    }
    ServingEngine golden(model, qc, 1);
    std::vector<size_t> gids;
    for (const auto &r : reqs)
        gids.push_back(golden.submit(r));
    golden.runToCompletion();

    EngineOptions opts;
    opts.max_batch = 1; // request 1 and 2 queue behind request 0
    ServingEngine engine(model, qc, opts);
    std::vector<size_t> ids;
    for (const auto &r : reqs)
        ids.push_back(engine.submit(r));

    // Let request 0 get partway through decode, then cancel it (active)
    // and request 2 (still queued). An unknown id must be refused.
    for (int i = 0; i < 8; ++i)
        engine.step();
    EXPECT_TRUE(engine.cancel(ids[0]));
    EXPECT_TRUE(engine.cancel(ids[2]));
    EXPECT_FALSE(engine.cancel(999));
    engine.runToCompletion();

    const RequestStats &r0 = engine.stats(ids[0]);
    EXPECT_EQ(r0.outcome, RequestOutcome::kCancelled);
    EXPECT_TRUE(r0.finished);
    // Partial output is a bit-exact prefix of the uncancelled stream.
    EXPECT_LT(r0.generated.size(), reqs[0].max_new_tokens);
    EXPECT_TRUE(isPrefixOf(r0.generated, golden.stats(gids[0]).generated));
    // A queued cancel produced nothing and ran nothing.
    EXPECT_EQ(engine.stats(ids[2]).outcome, RequestOutcome::kCancelled);
    EXPECT_TRUE(engine.stats(ids[2]).generated.empty());
    // The survivor is untouched.
    EXPECT_EQ(engine.stats(ids[1]).outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(engine.stats(ids[1]).generated,
              golden.stats(gids[1]).generated);
    // Cancelling a finished request reports the race to the caller.
    EXPECT_FALSE(engine.cancel(ids[0]));

    EXPECT_EQ(engine.engineStats().cancelled_requests, 2u);
    EXPECT_EQ(engine.pool().usedPages(), 0u);
    EXPECT_EQ(engine.reservedPages(), 0u);
    EXPECT_TRUE(engine.auditInvariants());
}

TEST(Lifecycle, CancelMidPrefixAdoptionDropsPinsAndKeepsSpansReusable)
{
    // The satellite: cancel a request while it is mid-way through
    // adopting a shared prefix (pages mapped, trie path pinned). The
    // pins must drop, page refcounts must return to the index alone,
    // and a follow-up request with the same prompt must still get a
    // bit-exact full prefix hit from the untouched spans.
    const ModelConfig cfg = tinyConfig();
    const Transformer model(cfg);
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 1;
    opts.prefill_chunk = 8; // the 32-token tail takes several quanta
    opts.prefix_cache_tokens = 256;
    ServingEngine engine(model, qc, opts);

    // Leader publishes a 2-page (64-token) shared head.
    auto reqs = sharedPrefixRequests(2, 64, 32, 6);
    const size_t leader = engine.submit(reqs[0]);
    engine.runToCompletion();
    EXPECT_EQ(engine.stats(leader).outcome, RequestOutcome::kCompleted);
    ASSERT_GE(engine.prefixCachedTokens(), 64u);

    // Follower (same head): step until it has adopted shared pages but
    // is still prefilling its private tail — cancelled exactly in the
    // middle of the adoption walk, pin held.
    ServeRequest follower = reqs[0];
    const size_t f_id = engine.submit(follower);
    for (int i = 0; i < 200 && engine.stats(f_id).generated.empty(); ++i) {
        engine.step();
        if (engine.stats(f_id).shared_prompt_tokens > 0)
            break;
    }
    ASSERT_GT(engine.stats(f_id).shared_prompt_tokens, 0u);
    ASSERT_TRUE(engine.stats(f_id).generated.empty());
    EXPECT_TRUE(engine.cancel(f_id));
    engine.runToCompletion();
    EXPECT_EQ(engine.stats(f_id).outcome, RequestOutcome::kCancelled);

    // Pins dropped, follower pages released: only the cached spans
    // remain resident, every page referenced exactly once (the index).
    EXPECT_EQ(engine.reservedPages(), 0u);
    EXPECT_EQ(engine.pool().usedPages(),
              engine.prefixIndex()->heldPages());
    EXPECT_TRUE(engine.auditInvariants());

    // Follow-up with the same prompt: full bit-exact prefix hit.
    const size_t g_id = engine.submit(reqs[0]);
    engine.runToCompletion();
    EXPECT_EQ(engine.stats(g_id).outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(engine.stats(g_id).shared_prompt_tokens, 64u);
    EXPECT_EQ(engine.stats(g_id).generated,
              engine.stats(leader).generated);

    // And the spans were never leaked: clearing drains the pool fully.
    engine.clearPrefixCache();
    EXPECT_EQ(engine.pool().usedPages(), 0u);
}

// ------------------------------------------------------------ deadlines --

TEST(Lifecycle, DeadlinesOnVirtualClockAreDeterministic)
{
    // step_time_ms makes deadline behaviour a pure function of the
    // step count: the same workload times out at the same step every
    // run. The timed-out request keeps its partial tokens — a prefix
    // of its unconstrained stream — and completed peers are untouched.
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    ServeRequest slow;
    slow.prompt = tokenRamp(24, 3);
    slow.max_new_tokens = 48;
    ServeRequest fast = slow;
    fast.max_new_tokens = 6;

    ServingEngine golden(model, qc, 2);
    const size_t g_slow = golden.submit(slow);
    const size_t g_fast = golden.submit(fast);
    golden.runToCompletion();

    auto run = [&](double deadline) {
        EngineOptions opts;
        opts.max_batch = 2;
        opts.step_time_ms = 1.0; // virtual: 1 ms per step
        ServingEngine engine(model, qc, opts);
        ServeRequest bounded = slow;
        bounded.deadline_ms = deadline; // per-request knob
        const size_t s = engine.submit(bounded);
        const size_t f = engine.submit(fast);
        engine.runToCompletion();
        EXPECT_EQ(engine.stats(f).outcome, RequestOutcome::kCompleted);
        EXPECT_EQ(engine.stats(f).generated,
                  golden.stats(g_fast).generated);
        EXPECT_TRUE(engine.auditInvariants());
        EXPECT_EQ(engine.pool().usedPages(), 0u);
        return engine.stats(s).generated;
    };

    const auto cut_a = run(20.0);
    const auto cut_b = run(20.0);
    EXPECT_EQ(cut_a, cut_b); // deterministic cut point
    EXPECT_LT(cut_a.size(), slow.max_new_tokens);
    EXPECT_TRUE(isPrefixOf(cut_a, golden.stats(g_slow).generated));

    // Engine-default deadline applies when the request leaves it 0,
    // and the timeout is COUNTED as timed_out, not shed or cancelled.
    EngineOptions opts;
    opts.max_batch = 2;
    opts.step_time_ms = 1.0;
    opts.deadline_ms = 20.0;
    ServingEngine engine(model, qc, opts);
    const size_t s = engine.submit(slow);
    engine.runToCompletion();
    EXPECT_EQ(engine.stats(s).outcome, RequestOutcome::kTimedOut);
    EXPECT_EQ(engine.engineStats().timed_out_requests, 1u);
    EXPECT_EQ(engine.stats(s).generated, cut_a);
}

TEST(Lifecycle, TtftDeadlineCutsStalledQueuedRequests)
{
    // max_batch 1: the second request waits its whole TTFT budget in
    // the queue and must die there (no pages were ever held), while
    // the running request — whose first token landed long before the
    // TTFT bound — is immune even though it decodes much longer.
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 1;
    opts.step_time_ms = 1.0;
    opts.ttft_deadline_ms = 10.0;
    ServingEngine engine(model, qc, opts);

    ServeRequest first;
    first.prompt = tokenRamp(16, 3);
    first.max_new_tokens = 40; // still decoding when the bound passes
    ServeRequest second = first;
    const size_t a = engine.submit(first);
    const size_t b = engine.submit(second);
    engine.runToCompletion();

    EXPECT_EQ(engine.stats(a).outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(engine.stats(b).outcome, RequestOutcome::kTimedOut);
    EXPECT_TRUE(engine.stats(b).generated.empty());
    EXPECT_EQ(engine.engineStats().timed_out_requests, 1u);
    EXPECT_TRUE(engine.auditInvariants());
}

// --------------------------------------------------------- load shedding --

TEST(Lifecycle, QueueCapShedsNewestAtSubmitTime)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 1;
    opts.queue_cap = 2;
    ServingEngine engine(model, qc, opts);

    ServeRequest req;
    req.prompt = tokenRamp(16, 3);
    req.max_new_tokens = 6;
    std::vector<size_t> ids;
    ids.push_back(engine.submit(req));
    engine.step(); // ids[0] occupies the slot; the queue is empty
    for (int i = 0; i < 3; ++i)
        ids.push_back(engine.submit(req));

    // The shed decision is visible at submit time, before any step.
    EXPECT_EQ(engine.stats(ids[3]).outcome, RequestOutcome::kShed);
    EXPECT_TRUE(engine.stats(ids[3]).finished);
    EXPECT_EQ(engine.queuedRequests(), 2u); // ids[1], ids[2]

    engine.runToCompletion();
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(engine.stats(ids[i]).outcome,
                  RequestOutcome::kCompleted);
    EXPECT_EQ(engine.engineStats().shed_requests, 1u);
    EXPECT_TRUE(engine.auditInvariants());
}

TEST(Lifecycle, LowestPriorityShedDisplacesWorseQueuedRequest)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 1;
    opts.queue_cap = 2;
    opts.shed_policy = ShedPolicy::kLowestPriority;
    ServingEngine engine(model, qc, opts);

    ServeRequest req;
    req.prompt = tokenRamp(16, 3);
    req.max_new_tokens = 6;
    const size_t running = engine.submit(req);
    engine.step(); // `running` occupies the slot; the queue is empty
    ServeRequest low = req;
    low.priority = -1;
    const size_t low_id = engine.submit(low); // queued
    const size_t mid_id = engine.submit(req); // queued, prio 0: cap hit

    // An incoming request that does NOT outrank the worst queued one
    // is shed itself (ties keep the incumbent)...
    const size_t tie_id = engine.submit(low);
    EXPECT_EQ(engine.stats(tie_id).outcome, RequestOutcome::kShed);
    EXPECT_EQ(engine.queuedRequests(), 2u);

    // ...while a higher-priority arrival displaces the worst.
    ServeRequest high = req;
    high.priority = 2;
    const size_t high_id = engine.submit(high);
    EXPECT_EQ(engine.stats(low_id).outcome, RequestOutcome::kShed);
    EXPECT_EQ(engine.queuedRequests(), 2u);

    engine.runToCompletion();
    EXPECT_EQ(engine.stats(running).outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(engine.stats(mid_id).outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(engine.stats(high_id).outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(engine.engineStats().shed_requests, 2u);
    EXPECT_TRUE(engine.auditInvariants());
}

TEST(Lifecycle, OverlongQueueWaitShedsDeterministically)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 1;
    opts.step_time_ms = 1.0;
    opts.max_queue_wait_ms = 8.0;
    ServingEngine engine(model, qc, opts);

    ServeRequest slow;
    slow.prompt = tokenRamp(16, 3);
    slow.max_new_tokens = 30; // holds the slot past the wait bound
    ServeRequest waiter = slow;
    const size_t a = engine.submit(slow);
    const size_t b = engine.submit(waiter);
    engine.runToCompletion();

    EXPECT_EQ(engine.stats(a).outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(engine.stats(b).outcome, RequestOutcome::kShed);
    EXPECT_EQ(engine.engineStats().shed_requests, 1u);
    EXPECT_TRUE(engine.auditInvariants());
}

// ------------------------------------------------------------ checksums --

TEST(Lifecycle, CorruptedSpanIsDetectedQuarantinedAndNeverServed)
{
    // Publish a span, corrupt it through the chaos hook, then submit a
    // same-prompt follower: adoption-time verification must refuse the
    // span (counting a checksum failure), the follower must compute
    // privately and still produce the bit-exact golden stream, and the
    // quarantined node must drain without ever being served.
    const ModelConfig cfg = tinyConfig();
    const Transformer model(cfg);
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");

    FaultInjector::Config fcfg;
    fcfg.seed = 7;
    fcfg.p_corrupt_page = 1.0; // corrupt one idle leaf every step
    FaultInjector fault(fcfg);

    EngineOptions opts;
    opts.max_batch = 1;
    opts.prefix_cache_tokens = 256;
    opts.fault = &fault;
    ServingEngine engine(model, qc, opts);

    auto reqs = sharedPrefixRequests(2, 64, 8, 6);
    const size_t leader = engine.submit(reqs[0]);
    engine.runToCompletion();
    const size_t f_id = engine.submit(reqs[0]); // identical prompt
    engine.runToCompletion();

    const PrefixIndex *idx = engine.prefixIndex();
    ASSERT_NE(idx, nullptr);
    EXPECT_GT(idx->injectedCorruptions(), 0u);
    EXPECT_GT(idx->detectedCorruptions(), 0u);
    EXPECT_GT(engine.engineStats().checksum_failures, 0u);
    // Correctness never depended on the cache: bit-equal regardless.
    EXPECT_EQ(engine.stats(f_id).outcome, RequestOutcome::kCompleted);
    EXPECT_EQ(engine.stats(f_id).generated,
              engine.stats(leader).generated);
    EXPECT_TRUE(engine.auditInvariants());

    // Quarantined spans drain via eviction; the accounting identity
    // closes once nothing is resident.
    engine.clearPrefixCache();
    EXPECT_EQ(engine.pool().usedPages(), 0u);
    EXPECT_EQ(idx->injectedCorruptions(),
              idx->detectedCorruptions() +
                  idx->evictedUndetectedCorruptions());
}

TEST(Lifecycle, ChecksumVerificationCanBeDisabled)
{
    // checksum_pages=false skips verification (the production fast
    // path): adoption proceeds and no failures are counted. Nothing
    // corrupts pages here — the knob only gates the verify calls.
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions opts;
    opts.max_batch = 1;
    opts.prefix_cache_tokens = 256;
    opts.checksum_pages = false;
    ServingEngine engine(model, qc, opts);

    auto reqs = sharedPrefixRequests(2, 64, 8, 6);
    const size_t a = engine.submit(reqs[0]);
    engine.runToCompletion();
    const size_t b = engine.submit(reqs[0]);
    engine.runToCompletion();
    EXPECT_EQ(engine.stats(b).shared_prompt_tokens, 64u);
    EXPECT_EQ(engine.stats(b).generated, engine.stats(a).generated);
    EXPECT_EQ(engine.engineStats().checksum_failures, 0u);
}

// -------------------------------------------------------- fault injector --

TEST(Lifecycle, FaultInjectorIsDeterministicPerSeed)
{
    FaultInjector::Config cfg;
    cfg.seed = 42;
    cfg.p_pool_exhausted = 0.3;
    cfg.p_force_preempt = 0.3;
    cfg.p_clock_skew = 0.3;
    cfg.p_evict_storm = 0.3;
    cfg.p_corrupt_page = 0.3;

    auto drive = [](FaultInjector &f) {
        std::string log;
        for (uint64_t s = 0; s < 50; ++s) {
            f.beginStep(s);
            for (size_t site = 0; site < kFaultSiteCount; ++site) {
                if (f.shouldFire(static_cast<FaultSite>(site)) &&
                    static_cast<FaultSite>(site) ==
                        FaultSite::kClockSkew) {
                    f.drawSkewMs();
                }
            }
        }
        return f.scheduleString();
    };

    FaultInjector a(cfg);
    FaultInjector b(cfg);
    EXPECT_EQ(drive(a), drive(b));
    EXPECT_FALSE(a.events().empty());
    size_t total = 0;
    for (size_t site = 0; site < kFaultSiteCount; ++site)
        total += a.fired(static_cast<FaultSite>(site));
    EXPECT_EQ(total, a.events().size());

    cfg.seed = 43;
    FaultInjector c(cfg);
    EXPECT_NE(drive(c), a.scheduleString());
}

TEST(Lifecycle, DisabledFaultSitesConsumeNoDraws)
{
    // Toggling one site's probability to zero must not reshuffle the
    // schedule of the sites that stay enabled — otherwise a reproducer
    // could not narrow a failure down to one fault class.
    FaultInjector::Config all;
    all.seed = 99;
    all.p_force_preempt = 0.5;
    FaultInjector::Config extra = all;
    extra.p_corrupt_page = 0.0; // explicit zero — identical config

    FaultInjector a(all);
    FaultInjector b(extra);
    for (uint64_t s = 0; s < 100; ++s) {
        a.beginStep(s);
        b.beginStep(s);
        // b polls the disabled site too; it must not advance the rng.
        b.shouldFire(FaultSite::kCorruptPage);
        EXPECT_EQ(a.shouldFire(FaultSite::kForcePreempt),
                  b.shouldFire(FaultSite::kForcePreempt))
            << "step " << s;
    }
}

TEST(Lifecycle, HashFloatsDetectsSingleBitFlips)
{
    std::vector<float> buf(257);
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<float>(i) * 0.25f - 3.0f;
    const uint64_t base = hashFloats(buf.data(), buf.size());
    EXPECT_EQ(base, hashFloats(buf.data(), buf.size()));

    for (const size_t idx : {size_t(0), size_t(128), buf.size() - 1}) {
        uint32_t word;
        std::memcpy(&word, &buf[idx], sizeof(word));
        word ^= 1u;
        std::memcpy(&buf[idx], &word, sizeof(word));
        EXPECT_NE(base, hashFloats(buf.data(), buf.size()))
            << "bit flip at " << idx;
        word ^= 1u;
        std::memcpy(&buf[idx], &word, sizeof(word));
    }
    EXPECT_EQ(base, hashFloats(buf.data(), buf.size()));
}

// ------------------------------------------------------------- watchdog --

TEST(Lifecycle, RunToCompletionWatchdogTripsInsteadOfHanging)
{
    const Transformer model(tinyConfig());
    const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
    ServeRequest req;
    req.prompt = tokenRamp(24, 3);
    req.max_new_tokens = 30;

    ServingEngine capped(model, qc, 1);
    capped.submit(req);
    EXPECT_FALSE(capped.runToCompletion(2)); // cannot finish in 2 steps
    // Stats are still finalized for loud failure reporting.
    EXPECT_GT(capped.engineStats().wall_ms, 0.0);

    ServingEngine roomy(model, qc, 1);
    const size_t id = roomy.submit(req);
    EXPECT_TRUE(roomy.runToCompletion(100000));
    EXPECT_EQ(roomy.stats(id).outcome, RequestOutcome::kCompleted);
    EXPECT_DOUBLE_EQ(roomy.engineStats().goodput_ok_fraction, 1.0);
}

} // namespace
} // namespace mxplus
