/**
 * @file
 * Tests for the GEMM-level baseline schemes (Table 7 / Table 8):
 * SmoothQuant, QuaRot, Atom, AWQ, ANT, OliVe, Tender and the factory.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/adaptive_quant.h"
#include "baselines/atom.h"
#include "baselines/awq.h"
#include "baselines/format_quantizers.h"
#include "baselines/quarot.h"
#include "baselines/scheme_factory.h"
#include "baselines/smoothquant.h"
#include "baselines/tender.h"
#include "common/rng.h"
#include "tensor/matmul.h"
#include "tensor/stats.h"

namespace mxplus {
namespace {

/** Activations with channel-concentrated outliers + a weight matrix. */
struct Workload
{
    Matrix acts;
    Matrix weights;
};

Workload
makeWorkload(uint64_t seed, size_t tokens = 64, size_t k = 128,
             size_t n = 48)
{
    Rng rng(seed);
    Workload w{Matrix(tokens, k), Matrix(n, k)};
    for (size_t r = 0; r < tokens; ++r) {
        for (size_t c = 0; c < k; ++c) {
            float v = static_cast<float>(rng.gaussian(0.0, 0.3));
            // Sparse outlier channels (at most one per MX block) whose
            // magnitude varies strongly per token, as in real LLM
            // activations — static channel smoothing cannot fully fix it.
            if (c == 5 || c == 70)
                v *= static_cast<float>(20.0 * rng.lognormal(0.0, 1.0));
            w.acts.at(r, c) = v;
        }
    }
    for (size_t i = 0; i < w.weights.size(); ++i)
        w.weights.data()[i] = static_cast<float>(rng.gaussian(0.0, 0.1));
    return w;
}

/** Relative GEMM output error of a scheme on the workload. */
double
gemmRelError(GemmScheme &scheme, const Workload &w)
{
    scheme.calibrate(w.acts, w.weights);
    Matrix aq;
    Matrix wq;
    scheme.transform(w.acts, w.weights, aq, wq);
    const Matrix ref = matmulNT(w.acts, w.weights);
    const Matrix out = matmulNT(aq, wq);
    double num = 0.0;
    double den = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        const double d =
            static_cast<double>(ref.data()[i]) - out.data()[i];
        num += d * d;
        den += static_cast<double>(ref.data()[i]) * ref.data()[i];
    }
    return std::sqrt(num / den);
}

TEST(Fwht, SelfInverseUpToScale)
{
    Rng rng(1);
    std::vector<float> v(64);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
    std::vector<float> w = v;
    fwht(w.data(), w.size());
    fwht(w.data(), w.size());
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_NEAR(w[i] / 64.0f, v[i], 1e-4);
}

TEST(QuaRot, RotationPreservesProduct)
{
    const Workload w = makeWorkload(2);
    QuaRotScheme scheme(makeQuantizerByName("FP32"));
    scheme.calibrate(w.acts, w.weights);
    const Matrix ar = scheme.rotate(w.acts);
    const Matrix wr = scheme.rotate(w.weights);
    const Matrix ref = matmulNT(w.acts, w.weights);
    const Matrix rot = matmulNT(ar, wr);
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(rot.data()[i], ref.data()[i],
                    1e-3 * (1.0 + std::fabs(ref.data()[i])));
}

TEST(QuaRot, RotationSpreadsOutliers)
{
    const Workload w = makeWorkload(3);
    QuaRotScheme scheme(makeQuantizerByName("FP32"));
    scheme.calibrate(w.acts, w.weights);
    const Matrix ar = scheme.rotate(w.acts);
    // Kurtosis of the rotated activations must drop dramatically.
    auto kurtosis = [](const Matrix &m) {
        double mean = 0.0;
        for (size_t i = 0; i < m.size(); ++i)
            mean += m.data()[i];
        mean /= static_cast<double>(m.size());
        double m2 = 0.0;
        double m4 = 0.0;
        for (size_t i = 0; i < m.size(); ++i) {
            const double d = m.data()[i] - mean;
            m2 += d * d;
            m4 += d * d * d * d;
        }
        m2 /= static_cast<double>(m.size());
        m4 /= static_cast<double>(m.size());
        return m4 / (m2 * m2);
    };
    EXPECT_LT(kurtosis(ar), kurtosis(w.acts) / 2.0);
}

TEST(SmoothQuant, ScalesShrinkOutlierChannels)
{
    const Workload w = makeWorkload(4);
    SmoothQuantScheme scheme(makeQuantizerByName("FP32"));
    scheme.calibrate(w.acts, w.weights);
    Matrix aq;
    Matrix wq;
    scheme.transform(w.acts, w.weights, aq, wq);
    // With an identity inner quantizer the product must be preserved.
    const Matrix ref = matmulNT(w.acts, w.weights);
    const Matrix out = matmulNT(aq, wq);
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(out.data()[i], ref.data()[i],
                    1e-3 * (1.0 + std::fabs(ref.data()[i])));
    // Outlier channel magnitudes in A must shrink.
    double amax_out = 0.0;
    double amax_in = 0.0;
    for (size_t r = 0; r < w.acts.rows(); ++r) {
        amax_in = std::max(amax_in,
            std::fabs(static_cast<double>(w.acts.at(r, 5))));
        amax_out = std::max(amax_out,
            std::fabs(static_cast<double>(aq.at(r, 5))));
    }
    EXPECT_LT(amax_out, amax_in);
}

TEST(Atom, OutlierChannelsGetInt8)
{
    const Workload w = makeWorkload(5);
    AtomScheme scheme(0.125, 32);
    const double err = gemmRelError(scheme, w);
    // Atom must beat plain per-row INT4 on this outlier workload.
    auto int4 = std::make_shared<IntGroupQuantizer>(4, 0);
    FormatGemmScheme plain(int4, int4);
    const double err_plain = gemmRelError(plain, w);
    EXPECT_LT(err, err_plain);
    EXPECT_GT(scheme.outlierChannels(), 0u);
}

TEST(Awq, WeightScalingHelpsMxfp4Weights)
{
    // Table 8's synergy: AWQ scaling makes important weights the BM of
    // their block, so AWQ+MXFP4+ beats plain MXFP4 weight quantization.
    const Workload w = makeWorkload(6);
    AwqScheme awq_plus(makeQuantizerByName("MXFP4+"));
    const double err_awq = gemmRelError(awq_plus, w);

    FormatGemmScheme plain(makeBf16Quantizer(),
                           makeQuantizerByName("MXFP4"));
    const double err_plain = gemmRelError(plain, w);
    EXPECT_LT(err_awq, err_plain);
}

TEST(Ant, PicksDatatypePerGroupAndNeverIncreasesError)
{
    // The adaptive choice must be at least as good as always-int4.
    Rng rng(7);
    const AntQuantizer ant(32);
    for (int trial = 0; trial < 100; ++trial) {
        float group[32];
        for (auto &v : group)
            v = static_cast<float>(rng.studentT(2.5));
        float out[32];
        ant.quantizeGroup(group, out, 32);
        // int4 reference.
        IntGroupQuantizer int4(4, 32);
        float out_i[32];
        int4.quantizeGroup(group, out_i, 32);
        EXPECT_LE(mse(group, out, 32), mse(group, out_i, 32) + 1e-12);
    }
}

TEST(Ant, GaussianGroupPrefersNonFlint)
{
    const AntQuantizer ant(32);
    Rng rng(8);
    float group[32];
    for (auto &v : group)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
    float out[32];
    const int dtype = ant.quantizeGroup(group, out, 32);
    EXPECT_NE(dtype, 2); // flint is for extreme dynamic range only
}

TEST(Olive, VictimSacrificedOutlierPreserved)
{
    const OliveQuantizer olive(32);
    float group[32] = {};
    for (int i = 0; i < 32; ++i)
        group[i] = 0.1f * static_cast<float>((i % 5) - 2);
    group[10] = 50.0f; // outlier; victim is index 11
    group[11] = 0.2f;
    float out[32];
    olive.quantizeGroup(group, out, 32);
    EXPECT_NEAR(out[10], 50.0f, 0.25);
    EXPECT_EQ(out[11], 0.0f);
    // Body keeps a fine grid despite the outlier.
    EXPECT_NEAR(out[0], group[0], 0.05);
}

TEST(Tender, ChannelShiftsCompensated)
{
    const Workload w = makeWorkload(9);
    TenderScheme coarse(false);
    TenderScheme fine(true);
    const double err_coarse = gemmRelError(coarse, w);
    const double err_fine = gemmRelError(fine, w);
    // Finer runtime grouping must not be worse.
    EXPECT_LE(err_fine, err_coarse + 1e-9);
}

TEST(SchemeFactory, Table7SchemesConstructAndRun)
{
    const Workload w = makeWorkload(10);
    for (const auto &name : table7SchemeNames()) {
        auto scheme = makeSchemeByName(name);
        ASSERT_NE(scheme, nullptr) << name;
        const double err = gemmRelError(*scheme, w);
        EXPECT_GE(err, 0.0) << name;
        EXPECT_LT(err, 10.0) << name;
    }
}

TEST(SchemeFactory, MxfpPlusBeatsBaselinesOnOutlierWorkload)
{
    // The Table 7 headline, at GEMM-error level: MXFP4+ has lower output
    // error than the per-tensor baselines and SmoothQuant at 4 bits.
    const Workload w = makeWorkload(11);
    auto err = [&](const std::string &name) {
        auto scheme = makeSchemeByName(name);
        return gemmRelError(*scheme, w);
    };
    // Note: at single-GEMM granularity the gap between schemes is much
    // smaller than the end-to-end perplexity gap (errors compound across
    // layers); the model-level ordering is exercised by bench_tab7.
    const double mxfp4p = err("MXFP4+");
    EXPECT_LT(mxfp4p, err("ANT"));
    EXPECT_LT(mxfp4p, err("OliVe"));
    EXPECT_LT(mxfp4p, err("Tender"));
    EXPECT_LT(mxfp4p, err("MXFP4"));
    EXPECT_LE(err("MXFP4++"), mxfp4p + 1e-9);
}

} // namespace
} // namespace mxplus
