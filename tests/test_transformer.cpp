/**
 * @file
 * Integration tests for the transformer substrate and its evaluation
 * harness: determinism, quantization hooks, outlier structure, and the
 * headline quality orderings the paper depends on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "baselines/scheme_factory.h"
#include "model/eval.h"
#include "mx/reorder.h"

namespace mxplus {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig cfg = simLlama31_8b();
    cfg.n_layers = 2;
    return cfg;
}

TEST(Transformer, DeterministicConstruction)
{
    const ModelConfig cfg = tinyConfig();
    const Transformer a(cfg);
    const Transformer b(cfg);
    const std::vector<int> tokens = {1, 5, 9, 200, 3};
    const Matrix la = a.forward(tokens, QuantConfig::bf16Baseline());
    const Matrix lb = b.forward(tokens, QuantConfig::bf16Baseline());
    ASSERT_EQ(la.size(), lb.size());
    for (size_t i = 0; i < la.size(); ++i)
        EXPECT_EQ(la.data()[i], lb.data()[i]);
}

TEST(Transformer, ForwardShape)
{
    const ModelConfig cfg = tinyConfig();
    const Transformer model(cfg);
    const std::vector<int> tokens = {0, 1, 2, 3, 4, 5, 6, 7};
    const Matrix logits =
        model.forward(tokens, QuantConfig::bf16Baseline());
    EXPECT_EQ(logits.rows(), tokens.size());
    EXPECT_EQ(logits.cols(), cfg.vocab);
    for (size_t i = 0; i < logits.size(); ++i)
        EXPECT_TRUE(std::isfinite(logits.data()[i]));
}

TEST(Transformer, CausalityPrefixInvariance)
{
    // Logits at position t must not depend on tokens after t.
    const Transformer model(tinyConfig());
    const std::vector<int> long_seq = {3, 1, 4, 1, 5, 9, 2, 6};
    const std::vector<int> short_seq(long_seq.begin(),
                                     long_seq.begin() + 4);
    const Matrix l_long =
        model.forward(long_seq, QuantConfig::bf16Baseline());
    const Matrix l_short =
        model.forward(short_seq, QuantConfig::bf16Baseline());
    for (size_t t = 0; t < short_seq.size(); ++t) {
        for (size_t v = 0; v < l_short.cols(); ++v) {
            EXPECT_NEAR(l_long.at(t, v), l_short.at(t, v), 2e-2)
                << "position " << t;
        }
    }
}

TEST(Transformer, SampleMatchesForwardDistributionSupport)
{
    const Transformer model(tinyConfig());
    Rng rng(5);
    const auto tokens = model.sample(rng, 32, 1.0);
    EXPECT_GE(tokens.size(), 32u);
    for (int t : tokens) {
        EXPECT_GE(t, 0);
        EXPECT_LT(static_cast<size_t>(t),
                  model.config().vocab);
    }
}

TEST(Transformer, SampleIncrementalConsistentWithForward)
{
    // The decode-path (KV cache) and the full-sequence path must assign
    // consistent logits: teacher sequences should have much lower
    // full-forward cross-entropy than random sequences.
    const Transformer model(tinyConfig());
    Rng rng(6);
    const auto teacher_seq = model.sample(rng, 64, 1.0);
    std::vector<int> random_seq(teacher_seq.size());
    for (auto &t : random_seq)
        t = static_cast<int>(rng.uniformInt(model.config().vocab));
    const double ce_teacher =
        model.crossEntropy(teacher_seq, QuantConfig::bf16Baseline());
    const double ce_random =
        model.crossEntropy(random_seq, QuantConfig::bf16Baseline());
    EXPECT_LT(ce_teacher + 0.5, ce_random);
}

TEST(Transformer, CaptureHookSeesAllLinears)
{
    const Transformer model(tinyConfig());
    std::set<std::string> seen;
    model.setCaptureHook([&](const std::string &name, const Matrix &m) {
        EXPECT_GT(m.size(), 0u);
        seen.insert(name);
    });
    model.forward({1, 2, 3, 4}, QuantConfig::bf16Baseline());
    model.clearCaptureHook();
    for (const auto &name : model.linearNames())
        EXPECT_TRUE(seen.count(name)) << name;
}

TEST(Transformer, LinearWeightLookup)
{
    const Transformer model(tinyConfig());
    for (const auto &name : model.linearNames()) {
        const Matrix &w = model.linearWeight(name);
        EXPECT_GT(w.size(), 0u) << name;
    }
    EXPECT_EQ(model.linearWeight("head").rows(),
              model.config().vocab);
    EXPECT_EQ(model.linearWeight("L0.w_down").cols(),
              model.config().d_ff);
}

TEST(Transformer, ActivationsHaveChannelOutliers)
{
    // The Fig. 4 structure must be present: a few channels of the
    // attention input carry 3-sigma outliers for most tokens.
    const Transformer model(simLlama31_8b());
    Rng rng(8);
    const auto tokens = model.sample(rng, 48, 1.0);
    std::map<std::string, Matrix> captured;
    model.setCaptureHook([&](const std::string &name, const Matrix &m) {
        captured.emplace(name, m);
    });
    model.forward(tokens, QuantConfig::bf16Baseline());
    model.clearCaptureHook();

    const Matrix &acts = captured.at("L1.attn_in");
    const auto counts =
        countChannelOutliers(acts.data(), acts.rows(), acts.cols());
    size_t persistent = 0;
    for (size_t c = 0; c < counts.size(); ++c) {
        if (counts[c] > acts.rows() / 2)
            ++persistent;
    }
    EXPECT_GE(persistent, 1u);
    EXPECT_LE(persistent, counts.size() / 8);
}

TEST(Eval, TeacherDatasetDeterministicAndSized)
{
    const Transformer model(tinyConfig());
    const Dataset a = makeTeacherDataset(model, "d", 3, 40, 1.0, 9);
    const Dataset b = makeTeacherDataset(model, "d", 3, 40, 1.0, 9);
    ASSERT_EQ(a.sequences.size(), 3u);
    EXPECT_EQ(a.sequences, b.sequences);
    for (const auto &seq : a.sequences)
        EXPECT_EQ(seq.size(), 40u);
}

TEST(Eval, PerplexityOrderingAcrossFormats)
{
    // The paper's central quality ordering, end to end.
    const Transformer model(simLlama31_8b());
    const Dataset data =
        makeTeacherDataset(model, "d", 2, 160, 1.0, 10);
    const double bf16 =
        perplexity(model, data, QuantConfig::bf16Baseline());
    const double fp8 =
        perplexity(model, data, QuantConfig::fromFormat("MXFP8"));
    const double fp4 =
        perplexity(model, data, QuantConfig::fromFormat("MXFP4"));
    const double fp4p =
        perplexity(model, data, QuantConfig::fromFormat("MXFP4+"));
    EXPECT_LT(bf16, fp8);
    EXPECT_LT(fp8, fp4);
    EXPECT_LT(fp4p, fp4);
    EXPECT_GT(fp4, 2.0 * bf16); // MXFP4 collapses
}

TEST(Eval, ActivationQuantizationDominatesDegradation)
{
    // Figure 3's observation, on the strongest-outlier model: quantizing
    // activations alone reproduces most of the full-MXFP4 damage, while
    // quantizing weights alone costs much less.
    const Transformer model(simOpt66b());
    const Dataset data =
        makeTeacherDataset(model, "d", 2, 192, 1.0, 11);
    const double bf16 =
        perplexity(model, data, QuantConfig::bf16Baseline());
    const double w_only = perplexity(
        model, data, QuantConfig::fromFormats("BF16", "MXFP4"));
    const double a_only = perplexity(
        model, data, QuantConfig::fromFormats("MXFP4", "BF16"));
    const double both = perplexity(
        model, data, QuantConfig::fromFormat("MXFP4"));
    EXPECT_GT(a_only, w_only);
    EXPECT_LT(w_only, both);
    EXPECT_GT(bf16, 0.0);
}

TEST(Eval, TaskAccuracyBaselineHighQuantizedLower)
{
    const Transformer model(simLlama31_8b());
    const TaskSpec spec{"t", 24, 24, 8, 4, 2.0};
    const TaskSet task = makeTaskSet(model, spec, 12);
    const double bf16 =
        taskAccuracy(model, task, QuantConfig::bf16Baseline());
    const double fp4 =
        taskAccuracy(model, task, QuantConfig::fromFormat("MXFP4"));
    EXPECT_GT(bf16, 60.0); // teacher prefers its own continuation
    EXPECT_LE(fp4, bf16);
}

TEST(Eval, CalibratedSchemesCoverAllLinearsExceptHead)
{
    const Transformer model(tinyConfig());
    Rng rng(13);
    const auto calib = model.sample(rng, 32, 1.0);
    int created = 0;
    auto lookup = calibrateSchemes(model, calib, [&] {
        ++created;
        return makeSchemeByName("MXFP4+");
    });
    for (const auto &name : model.linearNames()) {
        if (name == "head")
            EXPECT_EQ(lookup(name), nullptr);
        else
            EXPECT_NE(lookup(name), nullptr) << name;
    }
    EXPECT_EQ(created,
              static_cast<int>(model.linearNames().size()) - 1);
}

TEST(Eval, SchemeLookupChangesOutput)
{
    const Transformer model(tinyConfig());
    Rng rng(14);
    const auto calib = model.sample(rng, 32, 1.0);
    QuantConfig qc = QuantConfig::bf16Baseline();
    qc.quantize_head = false;
    qc.scheme_lookup = calibrateSchemes(
        model, calib, [] { return makeSchemeByName("SMQ-INT4"); });
    const Dataset data = makeTeacherDataset(model, "d", 1, 64, 1.0, 15);
    const double smq = perplexity(model, data, qc);
    const double bf16 =
        perplexity(model, data, QuantConfig::bf16Baseline());
    EXPECT_GT(smq, bf16);
}

} // namespace
} // namespace mxplus
