/**
 * @file
 * Quickstart: quantize a block of values with MXFP4 and MXFP4+, inspect
 * the encodings, and see why the MX+ extension matters when a block
 * contains an outlier.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "formats/scale.h"
#include "mx/mx_quantizer.h"
#include "tensor/stats.h"

using namespace mxplus;

int
main()
{
    // A 6-element sample with one outlier (-9.84), straight from the
    // paper's Figure 4/6.
    const std::vector<float> block =
        {-0.27f, -0.19f, 0.99f, -0.20f, -9.84f, -0.39f};
    const int n = static_cast<int>(block.size());

    std::printf("input block:       ");
    for (float v : block)
        std::printf("%8.2f", v);
    std::printf("\n\n");

    // Quantize with standard MXFP4 and with the MX+ extension.
    const MxQuantizer mxfp4(ElementFormat::E2M1, MxMode::Standard);
    const MxQuantizer mxfp4p(ElementFormat::E2M1, MxMode::Plus);

    std::vector<float> q4(n);
    std::vector<float> q4p(n);
    mxfp4.fakeQuantizeBlock(block.data(), q4.data(), n);
    mxfp4p.fakeQuantizeBlock(block.data(), q4p.data(), n);

    std::printf("MXFP4  (%.2f bits/elem): ",
                mxfp4.avgBitsPerElement());
    for (float v : q4)
        std::printf("%8.2f", v);
    std::printf("\nMXFP4+ (%.2f bits/elem): ",
                mxfp4p.avgBitsPerElement());
    for (float v : q4p)
        std::printf("%8.2f", v);
    std::printf("\n\n");

    std::printf("block MSE: MXFP4 = %.4f, MXFP4+ = %.4f\n",
                mse(block.data(), q4.data(), n),
                mse(block.data(), q4p.data(), n));

    // Peek at the bit-level MX+ encoding: the block max keeps no private
    // exponent; its exponent field is repurposed as extra mantissa.
    const MxBlock enc = mxfp4p.encodeBlock(block.data(), n);
    std::printf("\nMX+ encoding: shared scale 2^%d, BM index %u\n",
                E8M0::decode(enc.scale_code), enc.bm_index);
    for (int i = 0; i < n; ++i) {
        std::printf("  elem %d: code 0x%X%s\n", i, enc.codes[i],
                    i == enc.bm_index
                        ? "  <- BM, sign+3-bit extended mantissa"
                        : "");
    }
    std::printf("\nThe outlier is represented as -10.00 instead of "
                "-8.00: one extra digit of precision at zero storage "
                "cost beyond the per-block BM index byte.\n");
    return 0;
}
