/**
 * @file
 * Outlier analysis workflow (Figures 4 and 5): capture the attention
 * input activations of a model, render an ASCII heatmap of channel
 * magnitudes, census the 3-sigma outliers per channel, and attribute
 * MXFP4 block quantization error to the block-max elements.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "model/eval.h"
#include "mx/reorder.h"
#include "tensor/stats.h"

using namespace mxplus;

int
main()
{
    const ModelConfig cfg = simLlama31_8b();
    const Transformer model(cfg);
    Rng rng(11);
    const auto tokens = model.sample(rng, 64, 1.0);

    std::map<std::string, Matrix> captured;
    model.setCaptureHook([&](const std::string &name, const Matrix &m) {
        captured.emplace(name, m);
    });
    model.forward(tokens, QuantConfig::bf16Baseline());
    model.clearCaptureHook();

    for (const std::string layer : {"L0.attn_in", "L2.attn_in"}) {
        const Matrix &acts = captured.at(layer);
        std::printf("\n=== %s activation magnitude heatmap "
                    "(tokens x channels, '.'<1 '+'<4 '#'>=4) ===\n",
                    layer.c_str());
        const size_t show_rows = std::min<size_t>(16, acts.rows());
        for (size_t r = 0; r < show_rows; ++r) {
            for (size_t c = 0; c < acts.cols(); c += 2) {
                const float a = std::fabs(acts.at(r, c));
                std::putchar(a < 1.0f ? '.' : (a < 4.0f ? '+' : '#'));
            }
            std::putchar('\n');
        }

        const auto counts =
            countChannelOutliers(acts.data(), acts.rows(), acts.cols());
        size_t n_outlier_channels = 0;
        for (size_t c = 0; c < counts.size(); ++c) {
            if (counts[c] > acts.rows() / 2) {
                ++n_outlier_channels;
                std::printf("outlier channel %zu: %zu/%zu tokens "
                            "beyond 3-sigma\n",
                            c, counts[c], acts.rows());
            }
        }
        std::printf("%zu persistent outlier channels "
                    "(channel-concentrated, as in Fig. 4a)\n",
                    n_outlier_channels);

        const MxQuantizer mxfp4(ElementFormat::E2M1, MxMode::Standard);
        const auto err =
            analyzeBlockError(mxfp4, acts.data(), acts.size());
        std::printf("MXFP4 error attribution: largest-error element "
                    "%.1f%%, BM element %.1f%% of total MSE "
                    "(Fig. 5)\n",
                    100.0 * err.largest_error_share,
                    100.0 * err.bm_share);
        std::printf("blocks w/ multiple outliers among outlier blocks: "
                    "%.1f%%\n",
                    100.0 * multiOutlierBlockFraction(
                        acts.data(), acts.rows(), acts.cols()));
    }
    return 0;
}
