/**
 * @file
 * End-to-end LLM serving scenario: quantize a synthetic LLM with MXFP4
 * vs MXFP4+, measure model quality (teacher-data perplexity + a zero-shot
 * task), estimate the serving speedup over BF16 with the GPU timing
 * model, and then actually serve the emulated model with the batched
 * continuous-batching engine (prefill + incremental quantized-KV decode)
 * — the workflow the paper's introduction motivates, from quality to
 * throughput. Closes by serving the same workload through the unified
 * ServingClient API twice — one async engine, then a sharded fleet —
 * and showing the token streams are bit-identical.
 */

#include <algorithm>
#include <cstdio>

#include "gpusim/llm_timing.h"
#include "model/eval.h"
#include "serve/async_engine.h"
#include "serve/router.h"
#include "serve/serving_engine.h"

using namespace mxplus;

namespace {

/** Serve a small greedy workload and print the engine's stats row. */
void
serveRow(const Transformer &model, const char *fmt, size_t batch)
{
    const QuantConfig qc = QuantConfig::fromFormat(fmt);
    ServingEngine engine(model, qc, batch);
    std::vector<size_t> ids;
    for (size_t r = 0; r < 4; ++r) {
        ServeRequest req;
        req.prompt.resize(16);
        for (size_t i = 0; i < req.prompt.size(); ++i)
            req.prompt[i] = static_cast<int>((11 + 5 * r + 3 * i) % 251);
        req.max_new_tokens = 12;
        ids.push_back(engine.submit(std::move(req)));
    }
    engine.runToCompletion();
    const EngineStats &es = engine.engineStats();
    double ttft_worst = 0.0;
    for (size_t id : ids)
        ttft_worst = std::max(ttft_worst, engine.stats(id).ttft_ms);
    std::printf("%-8s %5zu %10.1f %10.1f %9.1fms %8.1fMB\n", fmt, batch,
                es.throughput_tokens_per_s, es.decode_tokens_per_s,
                ttft_worst,
                static_cast<double>(es.kv_bytes_peak) / (1024.0 * 1024.0));
}

/**
 * Client code written once against the abstract ServingClient API:
 * submit a 2-family shared-prompt workload, drain, and report fleet
 * stats. The SAME function serves through one engine (AsyncFrontEnd)
 * or a sharded fleet (ShardedFrontEnd) — and returns the streams so
 * the caller can show they are bit-identical either way.
 */
std::vector<std::vector<int>>
serveThroughClient(ServingClient &client, const char *label)
{
    std::vector<uint64_t> tickets;
    for (size_t r = 0; r < 8; ++r) {
        ServeRequest req;
        req.prompt.resize(64);
        const size_t family = r % 2;
        for (size_t i = 0; i < req.prompt.size(); ++i)
            req.prompt[i] =
                static_cast<int>((19 + 3 * i + 31 * family) % 251);
        for (size_t i = 0; i < 8; ++i)
            req.prompt.push_back(
                static_cast<int>((7 + 5 * r + 11 * i) % 251));
        req.max_new_tokens = 8;
        tickets.push_back(client.submit(std::move(req)));
    }
    client.drain();
    const EngineStats &es = client.engineStats();
    std::vector<std::vector<int>> streams;
    for (uint64_t t : tickets)
        streams.push_back(client.stats(t).generated);
    std::printf("%-22s %10.1f %10.2f %12zu\n", label,
                es.throughput_tokens_per_s, es.goodput_ok_fraction,
                es.prefix_hit_tokens);
    return streams;
}

} // namespace

int
main()
{
    // 1. Model quality on the simulated Llama-3.1-8B.
    const ModelConfig cfg = simLlama31_8b();
    const Transformer model(cfg);
    std::printf("model: %s (d=%zu, %zu layers)\n", cfg.name.c_str(),
                cfg.d_model, cfg.n_layers);

    const Dataset data =
        makeTeacherDataset(model, "wiki-sim", 2, 256, 1.0, 7);
    const TaskSet task =
        makeTaskSet(model, quickTaskSuite().front(), 7);

    std::printf("\n%-10s %12s %12s\n", "format", "perplexity",
                "task acc %");
    for (const char *fmt : {"BF16", "MXFP8", "MXFP4", "MXFP4+"}) {
        const QuantConfig qc = fmt == std::string("BF16")
            ? QuantConfig::bf16Baseline()
            : QuantConfig::fromFormat(fmt);
        std::printf("%-10s %12.2f %12.1f\n", fmt,
                    perplexity(model, data, qc),
                    taskAccuracy(model, task, qc));
    }

    // 2. Serving performance of the real-size model on the GPU model.
    const GpuConfig gpu = GpuConfig::rtx5090();
    const LlmDims dims = LlmDims::llama31_8b();
    std::printf("\nserving %s on %s (4 req x 1024 in / 64 out):\n",
                dims.name.c_str(), gpu.name.c_str());

    ServingConfig bf16;
    bf16.act_format = OperandFormat::BF16;
    bf16.weight_format = OperandFormat::BF16;
    const double t_bf16 = servingTime(gpu, dims, bf16).total();

    struct Row
    {
        const char *name;
        OperandFormat act, weight;
        IntegrationPath path;
    };
    const Row rows[] = {
        {"MXFP4", OperandFormat::MXFP4, OperandFormat::MXFP4,
         IntegrationPath::DirectMx},
        {"A-MXFP4+ (SW)", OperandFormat::MXFP4Plus, OperandFormat::MXFP4,
         IntegrationPath::MxPlusSoftware},
        {"MXFP4+ (HW)", OperandFormat::MXFP4Plus,
         OperandFormat::MXFP4Plus, IntegrationPath::MxPlusHardware},
    };
    std::printf("%-15s %10s %10s %10s\n", "scheme", "prefill", "decode",
                "speedup");
    for (const Row &r : rows) {
        ServingConfig c;
        c.act_format = r.act;
        c.weight_format = r.weight;
        c.path = r.path;
        const ServingTime t = servingTime(gpu, dims, c);
        std::printf("%-15s %8.1fms %8.1fms %9.2fx\n", r.name,
                    t.prefill_ms, t.decode_ms, t_bf16 / t.total());
    }

    // 3. Serve the emulated model for real: continuous batching over
    // incremental decode with a quantized KV cache (4 req x 16 in /
    // 12 out, greedy). Batch 4 shares every linear GEMM across requests.
    std::printf("\nserving the emulated %s with the batching engine:\n",
                cfg.name.c_str());
    std::printf("%-8s %5s %10s %10s %11s %10s\n", "format", "batch",
                "tok/s", "decode/s", "worst ttft", "kv peak");
    for (const char *fmt : {"BF16", "MXFP4+"}) {
        for (size_t batch : {size_t{1}, size_t{4}})
            serveRow(model, fmt, batch);
    }

    // 4. Prefix sharing: the same requests behind one common system
    // prompt, with the prefix cache on vs off. One slot prefills each
    // shared page; everyone else maps it (copy-on-write fork at the
    // first divergent page), so TTFT and the KV footprint collapse
    // while the token streams stay bit-identical.
    std::printf("\nshared 128-token system prompt, 4 users (MXFP4+):\n");
    std::printf("%-14s %11s %10s %12s\n", "prefix cache", "worst ttft",
                "kv peak", "hit tokens");
    for (const bool sharing : {false, true}) {
        const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
        EngineOptions opts;
        opts.max_batch = 4;
        opts.prefix_cache_tokens = sharing ? 512 : 0;
        ServingEngine engine(model, qc, opts);
        std::vector<size_t> ids;
        for (size_t r = 0; r < 4; ++r) {
            ServeRequest req;
            req.prompt.resize(128);
            for (size_t i = 0; i < req.prompt.size(); ++i)
                req.prompt[i] = static_cast<int>((19 + 3 * i) % 251);
            for (size_t i = 0; i < 8; ++i)
                req.prompt.push_back(
                    static_cast<int>((7 + 5 * r + 11 * i) % 251));
            req.max_new_tokens = 8;
            ids.push_back(engine.submit(std::move(req)));
        }
        engine.runToCompletion();
        const EngineStats &es = engine.engineStats();
        double ttft_worst = 0.0;
        for (size_t id : ids)
            ttft_worst =
                std::max(ttft_worst, engine.stats(id).ttft_ms);
        std::printf("%-14s %9.1fms %8.1fMB %12zu\n",
                    sharing ? "on" : "off", ttft_worst,
                    static_cast<double>(es.kv_bytes_peak) /
                        (1024.0 * 1024.0),
                    es.prefix_hit_tokens);
    }

    // 5. Preemptive over-admission: a bursty mix of long low-priority
    // and short high-priority jobs under a tight KV budget. Reject-only
    // admission (factor 1) idles slots on worst-case reservations;
    // over-admission fills them and settles the occasional loss by
    // preempt-and-requeue — restarts are bit-exact, so the token
    // streams are identical either way.
    std::printf("\nbursty mixed-priority burst, tight KV budget "
                "(MXFP4+):\n");
    std::printf("%-14s %10s %10s %9s %11s %12s\n", "admission", "tok/s",
                "occupancy", "preempt", "worst wait", "recompute tok");
    for (const double factor : {1.0, 1.5}) {
        const QuantConfig qc = QuantConfig::fromFormat("MXFP4+");
        EngineOptions opts;
        opts.max_batch = 6;
        opts.kv_budget_tokens = 192;
        opts.over_admission = factor;
        opts.aging_rate = 0.25; // bounded wait for the low-prio jobs
        ServingEngine engine(model, qc, opts);
        for (size_t r = 0; r < 9; ++r) {
            ServeRequest req;
            const bool lng = r % 3 != 2;
            req.prompt.resize(8);
            for (size_t i = 0; i < req.prompt.size(); ++i)
                req.prompt[i] =
                    static_cast<int>((23 + 7 * r + 3 * i) % 251);
            req.max_new_tokens = lng ? 48 : 12;
            req.priority = lng ? 0 : 3;
            engine.submit(std::move(req));
        }
        engine.runToCompletion();
        const EngineStats &es = engine.engineStats();
        std::printf("%-14s %10.1f %10.2f %9zu %9.1fms %13zu\n",
                    factor > 1.0 ? "over-admit" : "reject-only",
                    es.throughput_tokens_per_s, es.mean_batch_occupancy,
                    es.preemptions, es.queue_wait_ms_p99,
                    es.preempted_recompute_tokens);
    }

    // 6. The unified client API: the same client function serves
    // through one async engine and through a 2-shard prefix-affinity
    // fleet — same tickets, same stats schema, and (the canonical
    // invariant, now across sharding) bit-identical token streams.
    std::printf("\none client function, two deployments (MXFP4+, "
                "2 shared-prompt families):\n");
    std::printf("%-22s %10s %10s %12s\n", "deployment", "tok/s",
                "goodput", "hit tokens");
    const QuantConfig serve_qc = QuantConfig::fromFormat("MXFP4+");
    EngineOptions client_opts;
    client_opts.max_batch = 4;
    client_opts.prefix_cache_tokens = 512;
    AsyncFrontEnd single(model, serve_qc, client_opts);
    const auto single_streams =
        serveThroughClient(single, "async single engine");
    RouterOptions router;
    router.num_shards = 2;
    ShardedFrontEnd fleet(model, serve_qc, client_opts, router);
    const auto fleet_streams =
        serveThroughClient(fleet, "sharded fleet (2)");
    std::printf("streams bit-identical across deployments: %s\n",
                single_streams == fleet_streams ? "yes" : "NO");

    std::printf("\ntakeaway: MXFP4+ keeps nearly all of MXFP4's serving "
                "speedup while recovering most of the quality gap to "
                "BF16 — and the engine's batched decode, prefix sharing "
                "and preemptive over-admission turn that into real "
                "tokens/s and real KV bytes (see BENCH_serving.json).\n");
    return 0;
}
