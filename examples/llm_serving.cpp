/**
 * @file
 * End-to-end LLM serving scenario: quantize a synthetic LLM with MXFP4
 * vs MXFP4+, measure model quality (teacher-data perplexity + a zero-shot
 * task), and estimate the serving speedup over BF16 with the GPU timing
 * model — the workflow the paper's introduction motivates.
 */

#include <cstdio>

#include "gpusim/llm_timing.h"
#include "model/eval.h"

using namespace mxplus;

int
main()
{
    // 1. Model quality on the simulated Llama-3.1-8B.
    const ModelConfig cfg = simLlama31_8b();
    const Transformer model(cfg);
    std::printf("model: %s (d=%zu, %zu layers)\n", cfg.name.c_str(),
                cfg.d_model, cfg.n_layers);

    const Dataset data =
        makeTeacherDataset(model, "wiki-sim", 2, 256, 1.0, 7);
    const TaskSet task =
        makeTaskSet(model, quickTaskSuite().front(), 7);

    std::printf("\n%-10s %12s %12s\n", "format", "perplexity",
                "task acc %");
    for (const char *fmt : {"BF16", "MXFP8", "MXFP4", "MXFP4+"}) {
        const QuantConfig qc = fmt == std::string("BF16")
            ? QuantConfig::bf16Baseline()
            : QuantConfig::fromFormat(fmt);
        std::printf("%-10s %12.2f %12.1f\n", fmt,
                    perplexity(model, data, qc),
                    taskAccuracy(model, task, qc));
    }

    // 2. Serving performance of the real-size model on the GPU model.
    const GpuConfig gpu = GpuConfig::rtx5090();
    const LlmDims dims = LlmDims::llama31_8b();
    std::printf("\nserving %s on %s (4 req x 1024 in / 64 out):\n",
                dims.name.c_str(), gpu.name.c_str());

    ServingConfig bf16;
    bf16.act_format = OperandFormat::BF16;
    bf16.weight_format = OperandFormat::BF16;
    const double t_bf16 = servingTime(gpu, dims, bf16).total();

    struct Row
    {
        const char *name;
        OperandFormat act, weight;
        IntegrationPath path;
    };
    const Row rows[] = {
        {"MXFP4", OperandFormat::MXFP4, OperandFormat::MXFP4,
         IntegrationPath::DirectMx},
        {"A-MXFP4+ (SW)", OperandFormat::MXFP4Plus, OperandFormat::MXFP4,
         IntegrationPath::MxPlusSoftware},
        {"MXFP4+ (HW)", OperandFormat::MXFP4Plus,
         OperandFormat::MXFP4Plus, IntegrationPath::MxPlusHardware},
    };
    std::printf("%-15s %10s %10s %10s\n", "scheme", "prefill", "decode",
                "speedup");
    for (const Row &r : rows) {
        ServingConfig c;
        c.act_format = r.act;
        c.weight_format = r.weight;
        c.path = r.path;
        const ServingTime t = servingTime(gpu, dims, c);
        std::printf("%-15s %8.1fms %8.1fms %9.2fx\n", r.name,
                    t.prefill_ms, t.decode_ms, t_bf16 / t.total());
    }

    std::printf("\ntakeaway: MXFP4+ keeps nearly all of MXFP4's serving "
                "speedup while recovering most of the quality gap to "
                "BF16.\n");
    return 0;
}
