/**
 * @file
 * Format explorer: dump the bit-level encodings (Figures 6/7) of any
 * block of numbers under every MX-family format in the library.
 *
 * Usage:
 *   ./build/examples/format_explorer [v0 v1 v2 ...]
 * Without arguments, the paper's Figure 6 block is used.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "formats/scale.h"
#include "mx/mx_quantizer.h"
#include "mx/nvfp4.h"

using namespace mxplus;

namespace {

std::string
bits(uint32_t code, int width)
{
    std::string s;
    for (int b = width - 1; b >= 0; --b)
        s += ((code >> b) & 1u) ? '1' : '0';
    return s;
}

void
dumpMx(const char *title, ElementFormat fmt, MxMode mode,
       const std::vector<float> &vals)
{
    const MxQuantizer q(fmt, mode);
    const int n = static_cast<int>(vals.size());
    const MxBlock enc = q.encodeBlock(vals.data(), n);
    std::vector<float> dec(n);
    q.decodeBlock(enc, dec.data(), n);

    std::printf("\n%s (avg %.3f bits/elem)\n", title,
                q.avgBitsPerElement());
    if (enc.scale_code == E8M0::kZeroBlock &&
        mode != MxMode::Standard) {
        std::printf("  zero block (reserved scale code 0)\n");
        return;
    }
    std::printf("  shared scale: 2^%d (E8M0 code %s)\n",
                E8M0::decode(enc.scale_code),
                bits(enc.scale_code, 8).c_str());
    if (mode != MxMode::Standard) {
        std::printf("  BM index: %u", enc.bm_index);
        if (mode == MxMode::PlusPlus)
            std::printf(", NBM scale delta: %u", enc.nbm_delta);
        std::printf("\n");
    }
    const int width = elementFormatInfo(fmt).bits;
    for (int i = 0; i < n; ++i) {
        const bool is_bm =
            mode != MxMode::Standard && i == enc.bm_index;
        std::printf("  [%2d] %10.4f -> %-8s -> %10.4f%s\n", i, vals[i],
                    bits(enc.codes[i], width).c_str(), dec[i],
                    is_bm ? "  (BM: S+extended mantissa)" : "");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<float> vals;
    for (int i = 1; i < argc; ++i)
        vals.push_back(std::strtof(argv[i], nullptr));
    if (vals.empty())
        vals = {-0.27f, -0.19f, 0.99f, -0.20f, -9.84f, -0.39f};

    std::printf("exploring %zu values\n", vals.size());
    dumpMx("MXFP4 (E2M1)", ElementFormat::E2M1, MxMode::Standard, vals);
    dumpMx("MXFP4+ (E2M1, extended BM)", ElementFormat::E2M1,
           MxMode::Plus, vals);
    dumpMx("MXFP4++ (decoupled NBM scale)", ElementFormat::E2M1,
           MxMode::PlusPlus, vals);
    dumpMx("MXFP6+ (E2M3)", ElementFormat::E2M3, MxMode::Plus, vals);
    dumpMx("MXFP8+ (E4M3)", ElementFormat::E4M3, MxMode::Plus, vals);
    dumpMx("MXINT8+", ElementFormat::INT8, MxMode::Plus, vals);

    // NVFP4+ uses 16-element blocks with an E4M3 (non power-of-two)
    // scale.
    if (vals.size() <= 16) {
        const Nvfp4Quantizer nv(true);
        const Nvfp4Block enc =
            nv.encodeBlock(vals.data(), static_cast<int>(vals.size()));
        std::printf("\nNVFP4+ (16-elem block, E4M3 scale)\n");
        std::printf("  scale code %s, BM index %u, extended: %s\n",
                    bits(enc.scale_code, 8).c_str(), enc.bm_index,
                    enc.bm_extended ? "yes" : "no (fallback)");
    }
    return 0;
}
