#!/usr/bin/env python3
"""Bench-regression gate over BENCH_*.json snapshots.

Compares a freshly produced bench JSON (typically a --quick run) against
a baseline snapshot and fails when a metric dropped more than the
threshold. Entries are matched by a per-bench key, so quick runs — which
measure a subset of the full config grid with the same workload — are
compared apples-to-apples:

  bench_serving:        key (format, workload, batch)
                        metrics throughput_tok_s, decode_tok_s
  bench_kernels_engine: key (op, m, n, k) -> simd_gflops
                        key (api, format, mode) -> simd_gbps

Two modes:

  --absolute            Same-machine gate: fail any metric whose
                        current/baseline ratio is below 1 - threshold.
                        This is what CI uses — it benches the PR build
                        AND the merge-base build on the same runner, so
                        machine speed cancels exactly.

  normalized (default)  Cross-machine trajectory check against the
                        committed baselines (recorded on the dev box).
                        The machine-speed factor for each file pair is
                        estimated as the median current/baseline ratio
                        of the OTHER pairs (leave-one-pair-out), so a
                        regression confined to one subsystem cannot drag
                        its own reference down; with a single pair the
                        global median is used. A uniform machine-speed
                        difference cancels; a targeted slowdown sticks
                        out. Caveat: a regression that hits every pair
                        at once looks like a slower machine and only
                        triggers a warning — the PR-mode absolute gate
                        is the authoritative check for that case.

Exit status: 0 clean, 1 regression(s), 2 usage/IO error.

Usage:
  tools/check_bench.py --pair current_serving.json:BENCH_serving.json \
                       --pair current_kernels.json:BENCH_kernels.json \
                       [--threshold 0.15] [--absolute]
"""

import argparse
import json
import statistics
import sys


def serving_metrics(doc):
    """Yield (key_str, metric_name, value) from a bench_serving doc."""
    # The uniform grid's workload parameters live at the document level;
    # fold them into the key so entries from different workloads can
    # never be compared against each other.
    wl = doc.get("workload", {})
    uniform_tag = "uniform r%sp%sn%s" % (wl.get("requests", "?"),
                                         wl.get("prompt_tokens", "?"),
                                         wl.get("new_tokens_per_request",
                                                "?"))
    for entry in doc.get("configs", []) + doc.get("mixed", []):
        workload = entry.get("workload", "uniform")
        if workload == "uniform":
            workload = uniform_tag
        key = "serving %s %s batch=%s" % (entry["format"], workload,
                                          entry["batch"])
        for metric in ("throughput_tok_s", "decode_tok_s"):
            if metric in entry:
                yield key, metric, float(entry[metric])


def kernels_metrics(doc):
    """Yield (key_str, metric_name, value) from a kernels doc."""
    for entry in doc.get("gemm", []):
        key = "gemm %s %sx%sx%s" % (entry["op"], entry["m"], entry["n"],
                                    entry["k"])
        yield key, "simd_gflops", float(entry["simd_gflops"])
    for entry in doc.get("quantize", []):
        key = "quantize %s %s %s" % (entry["api"], entry["format"],
                                     entry["mode"])
        yield key, "simd_gbps", float(entry["simd_gbps"])


def extract(doc):
    bench = doc.get("bench", "")
    if bench == "bench_serving":
        return dict(((k, m), v) for k, m, v in serving_metrics(doc))
    if bench == "bench_kernels_engine":
        return dict(((k, m), v) for k, m, v in kernels_metrics(doc))
    raise ValueError("unknown bench kind: %r" % bench)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print("check_bench: cannot read %s: %s" % (path, e),
              file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--pair", action="append", default=[],
                    metavar="CURRENT:BASELINE", required=True,
                    help="bench JSON pair; repeatable")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="tolerated fractional drop (default 0.15)")
    ap.add_argument("--absolute", action="store_true",
                    help="compare raw ratios (same-machine runs)")
    args = ap.parse_args()

    # rows[pair_index] = list of (key, metric, current, baseline, ratio)
    rows = []
    for pair in args.pair:
        if ":" not in pair:
            print("check_bench: --pair expects CURRENT:BASELINE",
                  file=sys.stderr)
            sys.exit(2)
        cur_path, base_path = pair.split(":", 1)
        cur = extract(load(cur_path))
        base = extract(load(base_path))
        matched = sorted(set(cur) & set(base))
        if not matched:
            # A PR that changes the bench workload/config grid produces
            # keys the old baseline does not have; that PR must also
            # regenerate the committed baselines, at which point the
            # gate re-engages. Skip rather than fail so such PRs pass
            # on the other pairs.
            print("check_bench: WARNING no matching entries between %s "
                  "and %s — pair skipped (workload changed? regenerate "
                  "the baseline)" % (cur_path, base_path),
                  file=sys.stderr)
            rows.append([])
            continue
        pair_rows = []
        for key in matched:
            b = base[key]
            if b <= 0.0:
                continue
            pair_rows.append((key[0], key[1], cur[key], b, cur[key] / b))
        rows.append(pair_rows)

    all_rows = [r for pair_rows in rows for r in pair_rows]
    if not all_rows:
        print("check_bench: WARNING vacuous run — every pair was "
              "skipped; the gate re-engages once baselines are "
              "regenerated", file=sys.stderr)
        return

    def reference_for(pair_index):
        if args.absolute:
            return 1.0
        others = [r[4] for i, pair_rows in enumerate(rows)
                  for r in pair_rows if i != pair_index]
        # Leave-one-pair-out: judge each file against the machine
        # factor seen by the other files; lone pairs fall back to their
        # own median.
        return statistics.median(others if others else
                                 [r[4] for r in rows[pair_index]])

    mode = "absolute" if args.absolute else "normalized (leave-one-out)"
    print("check_bench: %d metrics, %s mode, threshold %.0f%%" %
          (len(all_rows), mode, args.threshold * 100))

    if not args.absolute:
        # Honest limitation: a regression hitting EVERY pair at once
        # (e.g. a GEMM slowdown that drags serving down too) is
        # indistinguishable from a uniformly slower machine in one
        # normalized run — only the PR-mode absolute comparison can
        # separate those. Surface the suspicion loudly instead of
        # silently passing.
        global_median = statistics.median(r[4] for r in all_rows)
        if global_median < 1.0 - args.threshold:
            print("check_bench: WARNING global median ratio %.3f is "
                  "below %.3f — either this machine is much slower "
                  "than the baseline's, or EVERY subsystem regressed; "
                  "normalization cannot tell which. Re-check on the "
                  "baseline machine or rely on the PR absolute gate." %
                  (global_median, 1.0 - args.threshold))

    failures = []
    for pair_index, pair_rows in enumerate(rows):
        reference = reference_for(pair_index)
        floor = reference * (1.0 - args.threshold)
        for key, metric, cur, base, ratio in pair_rows:
            status = "ok"
            if ratio < floor:
                status = "REGRESSION"
                failures.append((key, metric, ratio, reference))
            print("  %-48s %-18s %10.2f vs %10.2f  ratio %.3f "
                  "(floor %.3f)  %s" %
                  (key, metric, cur, base, ratio, floor, status))

    if failures:
        print("check_bench: FAILED — %d metric(s) dropped more than "
              "%.0f%% below their reference:" %
              (len(failures), args.threshold * 100))
        for key, metric, ratio, reference in failures:
            print("  %s %s at %.1f%% of reference" %
                  (key, metric, 100.0 * ratio / reference))
        sys.exit(1)
    print("check_bench: OK")


if __name__ == "__main__":
    main()
