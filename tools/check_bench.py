#!/usr/bin/env python3
"""Bench-regression gate over BENCH_*.json snapshots.

Compares a freshly produced bench JSON (typically a --quick run) against
a baseline snapshot and fails when a metric regressed more than the
threshold. Entries are matched by a per-bench key, so quick runs — which
measure a subset of the full config grid with the same workload — are
compared apples-to-apples:

  bench_serving:        key (format, workload, batch); workload
                        geometry (uniform/shared-prefix/bursty/poisson
                        params) is folded into the key so entries
                        measured under different workloads never
                        compare. metrics throughput_tok_s, decode_tok_s
                        (higher is better); shared-prefix workloads
                        additionally gate ttft_p50_ms and kv_bytes_peak,
                        bursty workloads ttft_p99_ms (LOWER is better —
                        the prefix cache's and the preemptive
                        scheduler's wins respectively), poisson
                        workloads ttft_p99_ms and goodput_ok_fraction
                        (virtual step clock, so both are deterministic
                        and judged machine-independent), sharded-fleet
                        workloads ttft_p50_ms and kv_bytes_peak (serial
                        lock-step simulation on the virtual clock — the
                        affinity-vs-round-robin routing delta), and the
                        sharded-failover workload ttft_p99_ms and
                        goodput_ok_fraction (one shard killed mid-run;
                        the rerouted tail must hold and no request may
                        be lost). Rows with
                        num_threads != 1 (decode worker pool, async
                        front end) are never gated — CI runners are
                        single-core — but their token streams are
                        verified bit-identical in-bench.
  bench_kernels_engine: key (op, m, n, k) -> simd_gflops
                        key (api, format, mode) -> simd_gbps

Every comparison is expressed as a *goodness ratio* (current/baseline
for higher-is-better metrics, baseline/current for lower-is-better), so
a ratio below the floor always means "got worse". kv_bytes_peak is a
deterministic byte count, not a speed: it is flagged machine-
independent, always judged against reference 1.0 (even in normalized
mode) and excluded from the machine-speed medians.

Two modes:

  --absolute            Same-machine gate: fail any metric whose
                        goodness ratio is below 1 - threshold.
                        This is what CI uses — it benches the PR build
                        AND the merge-base build on the same runner, so
                        machine speed cancels exactly.

  normalized (default)  Cross-machine trajectory check against the
                        committed baselines (recorded on the dev box).
                        The machine-speed factor for each file pair is
                        estimated as the median goodness ratio of the
                        OTHER pairs (leave-one-pair-out), so a
                        regression confined to one subsystem cannot drag
                        its own reference down; with a single pair the
                        global median is used. A uniform machine-speed
                        difference cancels; a targeted slowdown sticks
                        out. Caveat: a regression that hits every pair
                        at once looks like a slower machine and only
                        triggers a warning — the PR-mode absolute gate
                        is the authoritative check for that case.

Exit status: 0 clean, 1 regression(s), 2 usage/IO error.

Usage:
  tools/check_bench.py --pair current_serving.json:BENCH_serving.json \
                       --pair current_kernels.json:BENCH_kernels.json \
                       [--threshold 0.15] [--absolute]
"""

import argparse
import json
import statistics
import sys


# Metrics where smaller numbers are better (latency, memory).
LOWER_IS_BETTER = {"ttft_p50_ms", "ttft_p99_ms", "kv_bytes_peak"}
# Deterministic counts that do not scale with machine speed: judged
# against reference 1.0 in every mode and excluded from the
# machine-factor estimate. goodput_ok_fraction is only ever gated on
# virtual-clock workloads (poisson), where it is a pure function of
# scheduling.
MACHINE_INDEPENDENT = {"kv_bytes_peak", "goodput_ok_fraction"}
# Workload families whose gated latency metrics run on the virtual
# step clock and are therefore machine-independent too. Matched
# against the folded key, which is space-delimited — "poisson-async"
# does not match " poisson " (and is never gated anyway). The serial
# sharded-fleet rows (sharded-ref / sharded-affinity /
# sharded-roundrobin / sharded-failover) are deterministic lock-step
# simulations on the same virtual clock; "sharded-async" runs real
# shard threads and is already excluded by its num_threads.
VIRTUAL_CLOCK_WORKLOADS = ("poisson", "sharded-ref", "sharded-affinity",
                           "sharded-roundrobin", "sharded-failover",
                           "sharded-compressed")
# Extra metrics gated per workload family, on top of the throughput
# metrics every serving row gets: the shared-prefix rows exist for
# their latency/memory wins, the bursty rows for the tail-latency
# bound that over-admission + aging must preserve, and the poisson
# rows for the open-loop tail latency + goodput under rps arrivals.
WORKLOAD_GATED_METRICS = {
    "shared-prefix": ("ttft_p50_ms", "kv_bytes_peak"),
    "bursty": ("ttft_p99_ms",),
    "poisson": ("ttft_p99_ms", "goodput_ok_fraction"),
    # Sharded-fleet rows exist for the routing-policy trade-off:
    # kv_bytes_peak is affinity's memory win (one physical prefix copy
    # per family instead of one per family per shard) and ttft_p50_ms
    # is the load-balance price it pays — both must hold steady, and
    # both are deterministic on the virtual clock.
    "sharded": ("ttft_p50_ms", "kv_bytes_peak"),
    # Crash-failover row: goodput must stay 1.0 (a killed shard never
    # loses a request) and ttft_p99_ms bounds the rerouted tail (the
    # re-prefill on the survivor) — both pure functions of scheduling
    # on the virtual clock.
    "sharded-failover": ("ttft_p99_ms", "goodput_ok_fraction"),
}


def machine_independent(key, metric):
    """Deterministic metrics: judged against reference 1.0 and excluded
    from machine-factor medians. Latency metrics become deterministic
    on virtual-clock workloads; throughput metrics are wall-clock
    everywhere and stay machine-dependent."""
    if metric in MACHINE_INDEPENDENT:
        return True
    if metric in ("ttft_p50_ms", "ttft_p99_ms"):
        return any((" %s " % wl) in key for wl in VIRTUAL_CLOCK_WORKLOADS)
    return False


def serving_metrics(doc):
    """Yield (key_str, metric, value, higher_is_better)."""
    # The uniform grid's workload parameters live at the document level;
    # fold them into the key so entries from different workloads can
    # never be compared against each other.
    wl = doc.get("workload", {})
    uniform_tag = "uniform r%sp%sn%s" % (wl.get("requests", "?"),
                                         wl.get("prompt_tokens", "?"),
                                         wl.get("new_tokens_per_request",
                                                "?"))
    sp = doc.get("shared_prefix", {})
    shared_tag = "r%ss%st%sn%s" % (sp.get("requests", "?"),
                                   sp.get("shared_tokens", "?"),
                                   sp.get("tail_tokens", "?"),
                                   sp.get("new_tokens_per_request", "?"))
    bw = doc.get("bursty_workload", {})
    bursty_tag = "r%sb%so%sa%s" % (bw.get("requests", "?"),
                                   bw.get("kv_budget_tokens", "?"),
                                   bw.get("over_admission", "?"),
                                   bw.get("aging_rate", "?"))
    pw = doc.get("poisson_workload", {})
    poisson_tag = "r%si%sd%ss%s" % (pw.get("requests", "?"),
                                    pw.get("mean_interarrival_ms", "?"),
                                    pw.get("deadline_ms", "?"),
                                    pw.get("seed", "?"))
    sh = doc.get("sharded_workload", {})
    sharded_tag = "f%sr%ss%st%sk%s" % (sh.get("families", "?"),
                                       sh.get("requests_per_family", "?"),
                                       sh.get("shared_tokens", "?"),
                                       sh.get("tail_tokens", "?"),
                                       sh.get("num_shards", "?"))
    # Extraction is allowlist-based: only the metrics named below are
    # ever gated, so rows may grow new fields (the lifecycle counters
    # shed/timed_out/cancelled/checksum_failures/goodput_ok_fraction,
    # or anything later) without breaking comparisons against an older
    # baseline that lacks them. The "overload" section is deliberately
    # NOT gated: its rows measure triage policy (who gets shed), not
    # machine speed — if one of its metrics ever becomes a gate, fold
    # the overload_workload geometry into the key first, like the
    # uniform/shared/bursty tags above.
    entries = (doc.get("poisson", []) + doc.get("configs", []) +
               doc.get("mixed", []) + doc.get("bursty", []) +
               doc.get("shared", []) + doc.get("sharded", []))
    for entry in entries:
        # Rows measured with a decode worker pool (or through the
        # async front end, which always runs one) are never gated: CI
        # runners are single-core, so multi-thread wall-clock numbers
        # there say nothing. Their token streams are still verified
        # bit-identical in-bench before the row is emitted.
        if entry.get("num_threads", 1) != 1:
            continue
        workload = entry.get("workload", "uniform")
        gated = ()
        if workload == "uniform":
            workload = uniform_tag
        elif workload == "poisson":
            # Exact match: "poisson-async" rows are pool-backed and
            # already skipped above, but keep the gate explicit.
            workload = "%s %s" % (workload, poisson_tag)
            gated = WORKLOAD_GATED_METRICS["poisson"]
        elif workload.startswith("shared-prefix"):
            # Same rule as the uniform grid: geometry lives at the
            # document level, folded in so a future workload change can
            # never compare kv_bytes_peak across different geometries.
            workload = "%s %s" % (workload, shared_tag)
            gated = WORKLOAD_GATED_METRICS["shared-prefix"]
        elif workload.startswith("bursty"):
            workload = "%s %s" % (workload, bursty_tag)
            gated = WORKLOAD_GATED_METRICS["bursty"]
        elif workload.startswith("sharded-failover"):
            # Must match before the generic sharded branch: the
            # failover row gates the rerouted tail + goodput, not the
            # routing-policy metrics.
            workload = "%s %s" % (workload, sharded_tag)
            gated = WORKLOAD_GATED_METRICS["sharded-failover"]
        elif workload.startswith("sharded"):
            # "sharded-async" never reaches here (num_threads ==
            # num_shards, filtered above); the serial fleet rows and
            # the single-engine reference share the geometry tag.
            workload = "%s %s" % (workload, sharded_tag)
            gated = WORKLOAD_GATED_METRICS["sharded"]
        key = "serving %s %s batch=%s" % (entry["format"], workload,
                                          entry["batch"])
        for metric in ("throughput_tok_s", "decode_tok_s") + gated:
            if metric in entry:
                yield (key, metric, float(entry[metric]),
                       metric not in LOWER_IS_BETTER)


def kernels_metrics(doc):
    """Yield (key_str, metric, value, higher_is_better)."""
    for entry in doc.get("gemm", []):
        key = "gemm %s %sx%sx%s" % (entry["op"], entry["m"], entry["n"],
                                    entry["k"])
        yield key, "simd_gflops", float(entry["simd_gflops"]), True
    for entry in doc.get("quantize", []):
        key = "quantize %s %s %s" % (entry["api"], entry["format"],
                                     entry["mode"])
        yield key, "simd_gbps", float(entry["simd_gbps"]), True


def extract(doc):
    bench = doc.get("bench", "")
    if bench == "bench_serving":
        gen = serving_metrics(doc)
    elif bench == "bench_kernels_engine":
        gen = kernels_metrics(doc)
    else:
        raise ValueError("unknown bench kind: %r" % bench)
    return dict(((k, m), (v, hib)) for k, m, v, hib in gen)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print("check_bench: cannot read %s: %s" % (path, e),
              file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--pair", action="append", default=[],
                    metavar="CURRENT:BASELINE", required=True,
                    help="bench JSON pair; repeatable")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="tolerated fractional drop (default 0.15)")
    ap.add_argument("--absolute", action="store_true",
                    help="compare raw ratios (same-machine runs)")
    args = ap.parse_args()

    # rows[pair_index] = list of (key, metric, current, baseline, ratio)
    # where ratio is the goodness ratio (< 1 means worse).
    rows = []
    for pair in args.pair:
        if ":" not in pair:
            print("check_bench: --pair expects CURRENT:BASELINE",
                  file=sys.stderr)
            sys.exit(2)
        cur_path, base_path = pair.split(":", 1)
        cur = extract(load(cur_path))
        base = extract(load(base_path))
        matched = sorted(set(cur) & set(base))
        if not matched:
            # A PR that changes the bench workload/config grid produces
            # keys the old baseline does not have; that PR must also
            # regenerate the committed baselines, at which point the
            # gate re-engages. Skip rather than fail so such PRs pass
            # on the other pairs.
            print("check_bench: WARNING no matching entries between %s "
                  "and %s — pair skipped (workload changed? regenerate "
                  "the baseline)" % (cur_path, base_path),
                  file=sys.stderr)
            rows.append([])
            continue
        pair_rows = []
        for key in matched:
            c, hib = cur[key]
            b, _ = base[key]
            # Zero baselines can't be ratioed; a zero CURRENT value is
            # only a division problem for lower-is-better metrics — a
            # higher-is-better metric collapsing to zero must still
            # produce ratio 0 and fail the gate.
            if b <= 0.0 or (not hib and c <= 0.0):
                continue
            ratio = (c / b) if hib else (b / c)
            pair_rows.append((key[0], key[1], c, b, ratio))
        rows.append(pair_rows)

    all_rows = [r for pair_rows in rows for r in pair_rows]
    if not all_rows:
        print("check_bench: WARNING vacuous run — every pair was "
              "skipped; the gate re-engages once baselines are "
              "regenerated", file=sys.stderr)
        return

    def speed_rows(pair_rows):
        return [r for r in pair_rows if not machine_independent(r[0], r[1])]

    def reference_for(pair_index):
        if args.absolute:
            return 1.0
        # Leave-one-pair-out over speed-dependent metrics only: judge
        # each file against the machine factor seen by the other files;
        # lone pairs fall back to their own median.
        others = [r[4] for i, pair_rows in enumerate(rows)
                  for r in speed_rows(pair_rows) if i != pair_index]
        own = [r[4] for r in speed_rows(rows[pair_index])]
        pool = others if others else own
        return statistics.median(pool) if pool else 1.0

    mode = "absolute" if args.absolute else "normalized (leave-one-out)"
    print("check_bench: %d metrics, %s mode, threshold %.0f%%" %
          (len(all_rows), mode, args.threshold * 100))

    if not args.absolute:
        # Honest limitation: a regression hitting EVERY pair at once
        # (e.g. a GEMM slowdown that drags serving down too) is
        # indistinguishable from a uniformly slower machine in one
        # normalized run — only the PR-mode absolute comparison can
        # separate those. Surface the suspicion loudly instead of
        # silently passing.
        speed_ratios = [r[4] for r in all_rows
                        if not machine_independent(r[0], r[1])]
        global_median = statistics.median(speed_ratios if speed_ratios
                                          else [r[4] for r in all_rows])
        if global_median < 1.0 - args.threshold:
            print("check_bench: WARNING global median ratio %.3f is "
                  "below %.3f — either this machine is much slower "
                  "than the baseline's, or EVERY subsystem regressed; "
                  "normalization cannot tell which. Re-check on the "
                  "baseline machine or rely on the PR absolute gate." %
                  (global_median, 1.0 - args.threshold))

    failures = []
    for pair_index, pair_rows in enumerate(rows):
        pair_reference = reference_for(pair_index)
        for key, metric, cur, base, ratio in pair_rows:
            reference = (1.0 if machine_independent(key, metric)
                         else pair_reference)
            floor = reference * (1.0 - args.threshold)
            status = "ok"
            if ratio < floor:
                status = "REGRESSION"
                failures.append((key, metric, ratio, reference))
            print("  %-48s %-18s %10.2f vs %10.2f  ratio %.3f "
                  "(floor %.3f)  %s" %
                  (key, metric, cur, base, ratio, floor, status))

    if failures:
        print("check_bench: FAILED — %d metric(s) regressed more than "
              "%.0f%% past their reference:" %
              (len(failures), args.threshold * 100))
        for key, metric, ratio, reference in failures:
            print("  %s %s at %.1f%% of reference" %
                  (key, metric, 100.0 * ratio / reference))
        sys.exit(1)
    print("check_bench: OK")


if __name__ == "__main__":
    main()
