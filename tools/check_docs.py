#!/usr/bin/env python3
"""Docs drift gate.

Two checks, both cheap enough to run in the clang-format CI job:

1. Knob-table completeness: every field of ``EngineOptions``
   (src/serve/serving_engine.h) must be mentioned in the "Policy
   knobs" section of docs/SERVING.md, and every field of
   ``RouterOptions`` (src/serve/router.h) in its "Router knobs"
   section. Adding a knob without documenting it fails CI — the
   tables are the user-facing contract, and silent drift there is how
   option docs rot.

2. Intra-repo markdown links: every relative link in the maintained
   documents (README.md, ROADMAP.md, docs/*.md) must point at a file
   that exists, and a ``#fragment`` on a markdown target must match a
   heading in that file (GitHub-style slugs). External http(s) links
   are not touched — this is a hermetic check, no network.

Exit code 0 when clean; 1 with one line per violation otherwise.

Usage: python3 tools/check_docs.py [--repo PATH]
"""

import argparse
import re
import sys
from pathlib import Path

KNOB_DOC = "docs/SERVING.md"
# (header, struct name, SERVING.md section) per documented knob struct.
KNOB_SPECS = (
    ("src/serve/serving_engine.h", "EngineOptions", "### Policy knobs"),
    ("src/serve/router.h", "RouterOptions", "### Router knobs"),
)
DOC_FILES = ("README.md", "ROADMAP.md")
DOC_GLOBS = ("docs/*.md",)

# Lines like `size_t max_batch = 8;` / `FaultInjector *fault = nullptr;`
# inside the struct body. The type may be multi-token; the field name is
# the last identifier before `=` (every EngineOptions field has an
# in-class default, which the style here treats as mandatory).
FIELD_RE = re.compile(r"^\s*[A-Za-z_][\w:<>, ]*[\s*&]([a-z_][a-z0-9_]*)\s*=")

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def option_fields(repo, header, struct):
    """Field names of the given options struct, in declaration order."""
    text = (repo / header).read_text()
    m = re.search(r"struct %s\s*\{(.*?)\n\};" % struct, text, re.S)
    if not m:
        sys.exit("check_docs: cannot find struct %s in %s"
                 % (struct, header))
    fields = []
    in_comment = False
    for line in m.group(1).splitlines():
        stripped = line.strip()
        if in_comment:
            if "*/" in stripped:
                in_comment = False
            continue
        if stripped.startswith("/*"):
            in_comment = "*/" not in stripped
            continue
        if stripped.startswith("//") or stripped.startswith("*"):
            continue
        fm = FIELD_RE.match(line)
        if fm:
            fields.append(fm.group(1))
    if not fields:
        sys.exit("check_docs: parsed zero %s fields — "
                 "the parser drifted from the header style" % struct)
    return fields


def knob_section(repo, section):
    """The given knobs section of SERVING.md (header to next heading)."""
    lines = (repo / KNOB_DOC).read_text().splitlines()
    start = None
    for i, line in enumerate(lines):
        if line.strip().startswith(section):
            start = i
            break
    if start is None:
        sys.exit("check_docs: %s has no '%s' section" %
                 (KNOB_DOC, section))
    end = len(lines)
    for i in range(start + 1, len(lines)):
        if lines[i].startswith("#"):
            end = i
            break
    return "\n".join(lines[start:end])


def github_slug(heading):
    """GitHub's anchor slug for a markdown heading."""
    s = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep contents
    s = s.strip().lower()
    s = re.sub(r"[^\w\- ]", "", s)
    return s.replace(" ", "-")


def heading_slugs(path):
    slugs = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def check_knobs(repo, errors):
    for header, struct, section_name in KNOB_SPECS:
        section = knob_section(repo, section_name)
        for field in option_fields(repo, header, struct):
            if "`%s`" % field not in section:
                errors.append(
                    "%s: %s::%s is not mentioned in the '%s' "
                    "section — document the knob (or its interaction "
                    "with an existing row)" %
                    (KNOB_DOC, struct, field, section_name))


def check_links(repo, errors):
    docs = [repo / f for f in DOC_FILES]
    for pattern in DOC_GLOBS:
        docs.extend(sorted(repo.glob(pattern)))
    slug_cache = {}
    for doc in docs:
        if not doc.exists():
            errors.append("%s: maintained document is missing" %
                          doc.relative_to(repo))
            continue
        in_fence = False
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                    continue  # http:, https:, mailto:, ...
                base, _, frag = target.partition("#")
                dest = doc if not base else (doc.parent / base).resolve()
                rel = "%s:%d" % (doc.relative_to(repo), lineno)
                if base and not dest.exists():
                    errors.append("%s: broken link '%s' (no such file)" %
                                  (rel, target))
                    continue
                if frag and dest.suffix == ".md":
                    if dest not in slug_cache:
                        slug_cache[dest] = heading_slugs(dest)
                    if frag not in slug_cache[dest]:
                        errors.append(
                            "%s: link '%s' — no heading with anchor "
                            "'#%s' in %s" %
                            (rel, target, frag,
                             dest.relative_to(repo)))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", default=Path(__file__).resolve().parent.parent,
                    type=Path, help="repository root")
    args = ap.parse_args()
    repo = args.repo.resolve()

    errors = []
    check_knobs(repo, errors)
    check_links(repo, errors)

    if errors:
        for e in errors:
            print("check_docs: FAIL  %s" % e)
        print("check_docs: %d violation(s)" % len(errors))
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
