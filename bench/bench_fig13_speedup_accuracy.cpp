/**
 * @file
 * Figure 13: end-to-end speedup over BF16 (x axis of the paper's scatter)
 * and average zero-shot accuracy (y axis) for Llama-2-13B-class serving
 * with 8 or 64 output tokens. Expected shape: MXFP4-family schemes
 * cluster at the highest speedups; MXFP4+/MXFP4++ (HW) and A-MXFP4+ (SW)
 * keep nearly all of MXFP4's speedup while recovering most of the
 * accuracy; MXFP8 and A8W4 trade speed for accuracy.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpusim/llm_timing.h"
#include "model/eval.h"

using namespace mxplus;

namespace {

/** Accuracy proxy: average over the quick task suite on sim-llama-2-13b. */
double
accuracyFor(const Transformer &model, const std::vector<TaskSet> &sets,
            const std::string &scheme)
{
    QuantConfig qc;
    if (scheme == "MXFP4") {
        qc = QuantConfig::fromFormat("MXFP4");
    } else if (scheme == "A-MXFP4+ (SW)") {
        qc = QuantConfig::fromFormats("MXFP4+", "MXFP4");
    } else if (scheme == "MXFP8") {
        qc = QuantConfig::fromFormat("MXFP8");
    } else if (scheme == "MXFP4+ (HW)") {
        qc = QuantConfig::fromFormat("MXFP4+");
    } else if (scheme == "MXFP4++ (HW)") {
        qc = QuantConfig::fromFormat("MXFP4++");
    } else if (scheme == "A8W4") {
        qc = QuantConfig::fromFormats("MXFP8", "MXFP4");
    } else {
        qc = QuantConfig::bf16Baseline();
    }
    double acc = 0.0;
    for (const auto &set : sets)
        acc += taskAccuracy(model, set, qc);
    return acc / static_cast<double>(sets.size());
}

} // namespace

int
main()
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    const LlmDims dims = LlmDims::llama2_13b();

    // Accuracy side: the sim-llama-2-13b substitute + quick task suite.
    const Transformer model(simLlama2_13b());
    std::vector<TaskSet> sets;
    for (const auto &spec :
         bench::fullRuns() ? paperTaskSuite() : quickTaskSuite()) {
        sets.push_back(makeTaskSet(model, spec, 99));
    }
    const double bf16_acc = [&] {
        double acc = 0.0;
        for (const auto &set : sets)
            acc += taskAccuracy(model, set, QuantConfig::bf16Baseline());
        return acc / static_cast<double>(sets.size());
    }();

    for (const size_t out_tokens : {8, 64}) {
        bench::header("Figure 13: speedup over BF16 and avg accuracy, "
                      "output length " + std::to_string(out_tokens));
        bench::row("scheme", {"speedup", "avg acc%"});
        bench::row("BF16", {"1.00", bench::num(bf16_acc, 1)});

        // BF16 serving reference.
        ServingConfig ref;
        ref.batch = 4;
        ref.input_tokens = 1024;
        ref.output_tokens = out_tokens;
        ref.act_format = OperandFormat::BF16;
        ref.weight_format = OperandFormat::BF16;
        ref.path = IntegrationPath::DirectMx;
        const double t_ref = servingTime(gpu, dims, ref).total();

        for (const auto &named : figure13Schemes()) {
            ServingConfig c = named.scheme;
            c.batch = 4;
            c.input_tokens = 1024;
            c.output_tokens = out_tokens;
            const double t = servingTime(gpu, dims, c).total();
            bench::row(named.name,
                       {bench::num(t_ref / t),
                        bench::num(accuracyFor(model, sets, named.name),
                                   1)});
        }
    }
    std::printf("\n(paper: MXFP4+ HW reaches 3.34x/2.73x over BF16 in "
                "prefill/decode-dominant runs with ~20 points more "
                "accuracy than MXFP4; A-MXFP4+ SW is close behind)\n");
    return 0;
}
