/**
 * @file
 * Figure 14: keep the top-k magnitude elements of every activation block
 * in MXFP6 (others MXFP4) and measure perplexity plus the fraction of
 * 3-sigma outliers covered. Expected shape: big gain from none -> top-1
 * (= the MX+ effect), small gain top-1 -> top-2, diminishing beyond;
 * channel reordering tracks the top-2 point.
 */

#include <cstdio>
#include <map>

#include "baselines/format_quantizers.h"
#include "baselines/reorder_quantizer.h"
#include "bench_util.h"
#include "model/eval.h"
#include "mx/reorder.h"
#include "tensor/stats.h"

using namespace mxplus;

int
main()
{
    bench::header("Figure 14: top-k outliers in MXFP6, rest in MXFP4");
    const size_t seq = bench::fullRuns() ? 1024 : 320;
    const size_t n_seq = bench::fullRuns() ? 4 : 2;

    for (const auto &cfg : {simLlama31_8b(), simMistral7b()}) {
        const Transformer model(cfg);
        const Dataset data =
            makeTeacherDataset(model, "wiki-sim", n_seq, seq, 1.0, 42);

        // Outlier coverage measured on a sampled attention input.
        Rng rng(91);
        const auto tokens = model.sample(rng, 128, 1.0);
        std::map<std::string, Matrix> captured;
        model.setCaptureHook(
            [&](const std::string &name, const Matrix &m) {
                captured.emplace(name, m);
            });
        model.forward(tokens, QuantConfig::bf16Baseline());
        model.clearCaptureHook();
        const Matrix &acts = captured.at("L1.attn_in");

        std::printf("\n-- %s --\n", cfg.name.c_str());
        bench::row("scheme", {"perplexity", "outliers-in-fp6 %"});

        for (int k : {0, 1, 2, 3, 4}) {
            QuantConfig qc = QuantConfig::bf16Baseline();
            qc.act = makeTopKQuantizer(k);
            qc.attention = makeTopKQuantizer(k);
            qc.weight = makeQuantizerByName("MXFP4");
            const double ppl = perplexity(model, data, qc);
            const double cov = outlierTopKCoverage(
                acts.data(), acts.size(), k);
            const std::string label =
                k == 0 ? "none (MXFP4)" : "top-" + std::to_string(k);
            bench::row(label,
                       {bench::num(ppl), bench::num(100.0 * cov, 1)});
        }

        // Reorder line: MXFP4+ activations with channel reordering.
        QuantConfig qc = QuantConfig::bf16Baseline();
        auto reordered = std::make_shared<ReorderQuantizer>(
            makeQuantizerByName("MXFP4+"));
        qc.act = reordered;
        qc.attention = makeQuantizerByName("MXFP4+");
        qc.weight = makeQuantizerByName("MXFP4");
        const double ppl = perplexity(model, data, qc);
        // Coverage after reordering with one BM slot per block.
        const auto counts =
            countChannelOutliers(acts.data(), acts.rows(), acts.cols());
        const auto perm = buildReorderPermutation(counts);
        Matrix shuffled(acts.rows(), acts.cols());
        applyColumnPermutation(acts.data(), shuffled.data(), acts.rows(),
                               acts.cols(), perm);
        const double cov = outlierTopKCoverage(
            shuffled.data(), shuffled.size(), 1);
        bench::row("Reorder(MXFP4+)",
                   {bench::num(ppl), bench::num(100.0 * cov, 1)});
    }
    std::printf("\n(paper shape: top-1 captures most of the gain, "
                "top-2 nearly all; Reorder tracks top-2)\n");
    return 0;
}
