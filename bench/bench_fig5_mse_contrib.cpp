/**
 * @file
 * Figure 5: the share of MXFP4 quantization MSE attributable to (a) the
 * element with the largest error in each MX block and (b) the block-max
 * (BM) element. Expected shape: both shares are large and close to each
 * other, so fixing only the BM recovers most of the error.
 */

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "model/eval.h"
#include "tensor/stats.h"

using namespace mxplus;

int
main()
{
    bench::header("Figure 5: contribution to MSE (%) in MXFP4 blocks");
    bench::row("model / tensor", {"LargestErr%", "BM%"});

    const auto models = {simOpt66b(), simLlama31_8b()};
    for (const auto &cfg : models) {
        const Transformer model(cfg);
        Rng rng(16);
        const auto tokens = model.sample(rng, 128, 1.0);
        std::map<std::string, Matrix> captured;
        model.setCaptureHook(
            [&](const std::string &name, const Matrix &m) {
                captured.emplace(name, m);
            });
        model.forward(tokens, QuantConfig::bf16Baseline());
        model.clearCaptureHook();

        // The paper samples the attention input of a middle layer.
        const std::string key =
            "L" + std::to_string(cfg.n_layers / 2) + ".attn_in";
        const Matrix &acts = captured.at(key);
        const MxQuantizer mxfp4(ElementFormat::E2M1, MxMode::Standard);
        const auto breakdown =
            analyzeBlockError(mxfp4, acts.data(), acts.size());
        bench::row(cfg.name + " " + key,
                   {bench::num(100.0 * breakdown.largest_error_share, 1),
                    bench::num(100.0 * breakdown.bm_share, 1)});
    }
    std::printf("\n(paper shape: the BM element accounts for most of the "
                "block MSE, nearly matching the largest-error share)\n");
    return 0;
}
