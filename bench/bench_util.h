/**
 * @file
 * Shared helpers for the per-table/figure benchmark harnesses: fixed-width
 * table printing and the workload-size switch.
 *
 * Every bench prints the same rows/series as the corresponding paper
 * table or figure. Set MXPLUS_FULL=1 in the environment for the
 * full-size sweeps (paper-scale model suites, longer sequences); the
 * default sizes finish the whole bench directory in a few minutes.
 */

#ifndef MXPLUS_BENCH_BENCH_UTIL_H
#define MXPLUS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace mxplus::bench {

/** True when MXPLUS_FULL=1: run the paper-scale workload sizes. */
inline bool
fullRuns()
{
    const char *env = std::getenv("MXPLUS_FULL");
    return env != nullptr && env[0] == '1';
}

/** Print a separator + header line for a bench section. */
inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Print one row of labeled cells with a fixed first-column width. */
inline void
row(const std::string &label, const std::vector<std::string> &cells,
    int label_width = 22, int cell_width = 11)
{
    std::printf("%-*s", label_width, label.c_str());
    for (const auto &c : cells)
        std::printf("%*s", cell_width, c.c_str());
    std::printf("\n");
}

/** Format a double with the given precision. */
inline std::string
num(double v, int precision = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace mxplus::bench

#endif // MXPLUS_BENCH_BENCH_UTIL_H
