/**
 * @file
 * Google-benchmark microbenchmarks of the host-side kernels: block
 * quantization throughput across formats/modes, the two-MMA software
 * GEMM path, and the functional DPE. These measure the CPU reference
 * implementation itself (not the GPU model) and track regressions.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "gpusim/dpe.h"
#include "mx/mx_quantizer.h"
#include "mx/nvfp4.h"
#include "mx/software_path.h"

namespace mxplus {
namespace {

std::vector<float>
randomData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> data(n);
    for (auto &v : data) {
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
        if (rng.uniform() < 0.03)
            v *= 30.0f;
    }
    return data;
}

void
BM_MxQuantize(benchmark::State &state)
{
    const auto format = static_cast<ElementFormat>(state.range(0));
    const auto mode = static_cast<MxMode>(state.range(1));
    const MxQuantizer q(format, mode);
    const auto data = randomData(1 << 16, 1);
    std::vector<float> out(data.size());
    for (auto _ : state) {
        q.fakeQuantize(data.data(), out.data(), data.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * data.size()));
}

BENCHMARK(BM_MxQuantize)
    ->ArgsProduct({{static_cast<long>(ElementFormat::E2M1),
                    static_cast<long>(ElementFormat::E4M3)},
                   {static_cast<long>(MxMode::Standard),
                    static_cast<long>(MxMode::Plus),
                    static_cast<long>(MxMode::PlusPlus)}})
    ->Unit(benchmark::kMillisecond);

void
BM_Nvfp4Quantize(benchmark::State &state)
{
    const Nvfp4Quantizer q(state.range(0) != 0);
    const auto data = randomData(1 << 16, 2);
    std::vector<float> out(data.size());
    for (auto _ : state) {
        q.fakeQuantize(data.data(), out.data(), data.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * data.size()));
}

BENCHMARK(BM_Nvfp4Quantize)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_TwoMmaGemm(benchmark::State &state)
{
    const MxQuantizer qa(ElementFormat::E2M1, MxMode::Plus);
    const MxQuantizer qb(ElementFormat::E2M1, MxMode::Standard);
    const auto a_data = randomData(16 * 256, 3);
    const auto b_data = randomData(16 * 256, 4);
    const PackedMatrix a(qa, a_data.data(), 16, 256);
    const PackedMatrix b(qb, b_data.data(), 16, 256);
    for (auto _ : state) {
        auto d = mxplusGemmTwoMma(a, b);
        benchmark::DoNotOptimize(d.data());
    }
}

BENCHMARK(BM_TwoMmaGemm)->Unit(benchmark::kMillisecond);

void
BM_FunctionalDpeGemm(benchmark::State &state)
{
    const MxQuantizer qa(ElementFormat::E2M1, MxMode::Plus);
    const MxQuantizer qb(ElementFormat::E2M1, MxMode::Standard);
    const auto a_data = randomData(16 * 256, 5);
    const auto b_data = randomData(16 * 256, 6);
    const PackedMatrix a(qa, a_data.data(), 16, 256);
    const PackedMatrix b(qb, b_data.data(), 16, 256);
    for (auto _ : state) {
        TensorCoreStats stats;
        auto d = tensorCoreGemm(a, b, &stats);
        benchmark::DoNotOptimize(d.data());
        benchmark::DoNotOptimize(&stats);
    }
}

BENCHMARK(BM_FunctionalDpeGemm)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace mxplus

BENCHMARK_MAIN();
