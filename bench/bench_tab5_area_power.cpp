/**
 * @file
 * Table 5: area and power of the MX+ Tensor-Core additions (28 nm),
 * reproduced from the component-level bill-of-materials model. Also costs
 * the Section 8.2 systolic-array variant (one BCU shared per column).
 */

#include <cstdio>

#include "bench_util.h"
#include "gpusim/area_power.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 5: area and power per Tensor Core (28 nm)");
    const AreaPowerModel model; // paper configuration: 32 DPEs x 16 FSUs
    const AreaPowerReport rep = model.report();

    bench::row("component", {"count", "area mm^2", "power mW"});
    for (const auto &c : rep.components) {
        bench::row(c.name,
                   {std::to_string(c.count),
                    bench::num(c.unit_area_mm2 * c.count, 3),
                    bench::num(c.unit_power_mw * c.count, 2)});
    }
    bench::row("Total", {"", bench::num(rep.total_area_mm2, 3),
                         bench::num(rep.total_power_mw, 2)});
    bench::row("(paper total)", {"",
                bench::num(AreaPowerModel::paperTotalAreaMm2(), 3),
                bench::num(AreaPowerModel::paperTotalPowerMw(), 2)});

    bench::header("Section 8.2 variant: 32x32 systolic array, one BCU "
                  "per column");
    const AreaPowerModel systolic(32, 32, 1.0 / 32.0);
    const AreaPowerReport srep = systolic.report();
    bench::row("Total (systolic)", {"",
                bench::num(srep.total_area_mm2, 3),
                bench::num(srep.total_power_mw, 2)});
    return 0;
}
