/**
 * @file
 * Table 2: zero-shot task accuracy across formats and models. Expected
 * shape: MX+ >= its MX counterpart everywhere, with the gap largest at
 * 4 bits (MXFP4 near chance on outlier-heavy models); A-MXFP4+ between
 * MXFP4 and MXFP4+; MXFP4++ >= MXFP4+.
 */

#include <cstdio>

#include "bench_util.h"
#include "model/eval.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 2: zero-shot accuracy (%), direct-cast");
    const auto tasks =
        bench::fullRuns() ? paperTaskSuite() : quickTaskSuite();
    const auto models =
        bench::fullRuns() ? paperModelSuite() : quickModelSuite();

    const std::vector<std::string> formats = {
        "BF16", "MXFP8+", "MXFP8", "MXFP6+", "MXFP6",
        "MXFP4++", "MXFP4+", "A-MXFP4+", "MXFP4"};

    for (const auto &cfg : models) {
        const Transformer model(cfg);
        std::printf("\n-- %s --\n", cfg.name.c_str());
        std::vector<std::string> head;
        for (const auto &t : tasks)
            head.push_back(t.name.substr(0, 10));
        bench::row("format", head);

        std::vector<TaskSet> sets;
        for (const auto &spec : tasks)
            sets.push_back(makeTaskSet(model, spec, 77));

        for (const auto &fmt : formats) {
            QuantConfig qc;
            if (fmt == "BF16") {
                qc = QuantConfig::bf16Baseline();
            } else if (fmt == "A-MXFP4+") {
                qc = QuantConfig::fromFormats("MXFP4+", "MXFP4");
            } else {
                qc = QuantConfig::fromFormat(fmt);
            }
            std::vector<std::string> cells;
            for (const auto &set : sets)
                cells.push_back(bench::num(taskAccuracy(model, set, qc),
                                           1));
            bench::row(fmt, cells);
        }
    }
    std::printf("\n(paper shape: MX+ >= MX at every width; MXFP4 "
                "collapses toward chance while MXFP4+ stays usable)\n");
    return 0;
}
