/**
 * @file
 * Table 6: total quantization (BF16 -> MX) time across input token
 * counts, normalized to MXFP4. Expected shape: MXFP4+ ~= MXFP4 (the BM
 * index falls out of the amax reduction); MXFP4++ a few percent above
 * (second-max reduction), growing slightly with token count as the
 * kernel leaves the launch-latency regime.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpusim/gemm_timing.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 6: quantization time normalized to MXFP4 "
                  "(Llama-2-13B hidden size)");
    const GpuConfig gpu = GpuConfig::rtx5090();
    const size_t k = 5120;
    const std::vector<size_t> tokens = {32, 128, 512, 1024, 2048};

    std::vector<std::string> head;
    for (size_t t : tokens)
        head.push_back(std::to_string(t));
    bench::row("tokens", head);

    for (const std::string fmt : {"MXFP4+", "MXFP4++"}) {
        std::vector<std::string> cells;
        for (size_t t : tokens) {
            const double base = quantizeTime(gpu, t, k, "MXFP4");
            const double ours = quantizeTime(gpu, t, k, fmt);
            cells.push_back(bench::num(ours / base));
        }
        bench::row(fmt, cells);
    }
    std::printf("\n(paper: MXFP4+ 1.00-1.05, MXFP4++ 1.04-1.15 across "
                "32-2048 tokens)\n");
    return 0;
}
