/**
 * @file
 * Machine-readable microbenchmark of the KernelDispatch engine: GEMM
 * GFLOP/s and block-quantization GB/s per backend and shape, emitted as
 * JSON so future PRs have a performance trajectory to regress against
 * (the committed snapshot lives in BENCH_kernels.json).
 *
 * Usage: bench_kernels_engine [--quick] [--out FILE]
 *
 *  --quick   small shapes / single repetition (CI smoke run)
 *  --out     write the JSON to FILE instead of stdout
 *
 * See docs/PERFORMANCE.md for how to interpret the output.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codec/page_codec.h"
#include "common/rng.h"
#include "kernels/kernel_dispatch.h"
#include "mx/mx_quantizer.h"
#include "tensor/tensor.h"

namespace mxplus {
namespace {

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

Matrix
randomMatrix(size_t rows, size_t cols, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    return m;
}

std::vector<float>
randomActivations(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> data(n);
    for (auto &v : data) {
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
        if (rng.uniform() < 0.03)
            v *= 30.0f; // outlier channels, as the paper's activations have
    }
    return data;
}

/** Run @p fn repeatedly until ~min_time elapses; return seconds/run. */
template <typename Fn>
double
timeIt(Fn &&fn, double min_time)
{
    fn(); // warm-up (page faults, panel allocation, dispatch resolution)
    int reps = 0;
    const double t0 = now();
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = now() - t0;
    } while (elapsed < min_time);
    return elapsed / reps;
}

struct GemmResult
{
    const char *op;
    size_t m, n, k;
    double ref_gflops;
    double simd_gflops;
};

struct QuantResult
{
    std::string format;
    const char *mode;
    const char *api;
    double ref_gbps;
    double simd_gbps;
};

GemmResult
benchGemm(const char *op, size_t m, size_t n, size_t k, double min_time)
{
    const Matrix a = randomMatrix(m, k, 1);
    const bool nt = std::strcmp(op, "NT") == 0;
    const Matrix b = nt ? randomMatrix(n, k, 2) : randomMatrix(k, n, 2);
    Matrix c(m, n);
    const double flops = 2.0 * static_cast<double>(m) *
        static_cast<double>(n) * static_cast<double>(k);

    auto run = [&](KernelBackend backend) {
        const double sec = timeIt(
            [&] {
                if (nt)
                    KernelDispatch::gemmNT(backend, a, b, c);
                else
                    KernelDispatch::gemmNN(backend, a, b, c);
            },
            min_time);
        return flops / sec * 1e-9;
    };
    GemmResult r{op, m, n, k, 0.0, 0.0};
    r.ref_gflops = run(KernelBackend::Reference);
    r.simd_gflops = run(KernelBackend::Simd);
    return r;
}

QuantResult
benchQuantize(ElementFormat fmt, MxMode mode, size_t rows, size_t cols,
              double min_time)
{
    const MxQuantizer q(fmt, mode);
    const auto data = randomActivations(rows * cols, 3);
    std::vector<float> out(data.size());
    const double bytes = static_cast<double>(data.size()) * sizeof(float);

    auto run = [&](KernelBackend backend) {
        const double sec = timeIt(
            [&] {
                KernelDispatch::quantizeRows(backend, q, data.data(),
                                             out.data(), rows, cols);
            },
            min_time);
        return bytes / sec * 1e-9;
    };
    QuantResult r{q.name(), mxModeName(mode), "quantizeRows", 0.0, 0.0};
    r.ref_gbps = run(KernelBackend::Reference);
    r.simd_gbps = run(KernelBackend::Simd);
    return r;
}

QuantResult
benchPack(ElementFormat fmt, MxMode mode, size_t rows, size_t cols,
          double min_time)
{
    const MxQuantizer q(fmt, mode);
    const auto data = randomActivations(rows * cols, 4);
    const double bytes = static_cast<double>(data.size()) * sizeof(float);

    auto run = [&](KernelBackend backend) {
        const double sec = timeIt(
            [&] {
                auto blocks = KernelDispatch::quantizePack(
                    backend, q, data.data(), rows, cols);
                (void)blocks;
            },
            min_time);
        return bytes / sec * 1e-9;
    };
    QuantResult r{q.name(), mxModeName(mode), "quantizePack", 0.0, 0.0};
    r.ref_gbps = run(KernelBackend::Reference);
    r.simd_gbps = run(KernelBackend::Simd);
    return r;
}

/**
 * Page-codec encode/decode GB/s over fakeQuantized K/V codes — the
 * exact data frozen KV pages hold, so the throughput (and the ratio
 * the encoder achieves) matches what KvPagePool::compressPage and
 * pageRegion see in serving. GB/s counts payload (float) bytes, the
 * serving-relevant side of the stream. ref_gbps is the scalar
 * "reference" codec, simd_gbps the AVX2 "simd" codec (falls back to
 * reference where AVX2 is unavailable, like KernelDispatch does).
 */
QuantResult
benchCodec(const char *api, ElementFormat fmt, MxMode mode, size_t rows,
           size_t cols, double min_time)
{
    const MxQuantizer q(fmt, mode);
    const auto data = randomActivations(rows * cols, 5);
    std::vector<float> codes(data.size());
    KernelDispatch::quantizeRows(KernelBackend::Reference, q, data.data(),
                                 codes.data(), rows, cols);
    const double bytes =
        static_cast<double>(codes.size()) * sizeof(float);
    const bool decode = std::strcmp(api, "codecDecode") == 0;

    auto run = [&](const PageCodec *codec) {
        std::vector<uint8_t> stream;
        codec->encode(codes.data(), codes.size(), stream);
        std::vector<float> out(codes.size());
        std::vector<uint8_t> scratch;
        const double sec = timeIt(
            [&] {
                if (decode) {
                    codec->decode(stream.data(), stream.size(),
                                  out.data(), out.size());
                } else {
                    codec->encode(codes.data(), codes.size(), scratch);
                }
            },
            min_time);
        return bytes / sec * 1e-9;
    };
    const PageCodec *reference = pageCodecByName("reference");
    const PageCodec *simd = pageCodecByName("simd");
    QuantResult r{q.name(), mxModeName(mode), api, 0.0, 0.0};
    r.ref_gbps = run(reference);
    r.simd_gbps = run(simd != nullptr ? simd : reference);
    return r;
}

} // namespace
} // namespace mxplus

int
main(int argc, char **argv)
{
    using namespace mxplus;

    bool quick = false;
    const char *out_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--out FILE]\n", argv[0]);
            return 2;
        }
    }

    const double min_time = quick ? 0.02 : 0.25;
    // Quick mode keeps 512 (a shape the full run also measures) so the
    // CI regression gate can match quick entries against the committed
    // full-run baseline by (op, m, n, k).
    std::vector<size_t> sizes =
        quick ? std::vector<size_t>{512} : std::vector<size_t>{512, 1024,
                                                               2048};

    std::vector<GemmResult> gemm;
    for (const char *op : {"NT", "NN"}) {
        for (size_t s : sizes) {
            std::fprintf(stderr, "gemm %s %zu...\n", op, s);
            gemm.push_back(benchGemm(op, s, s, s, min_time));
        }
    }
    if (!quick) {
        // One transformer-shaped rectangle (prefill: T=256 tokens,
        // d_model=1024, d_ff=2816).
        gemm.push_back(benchGemm("NT", 256, 2816, 1024, min_time));
    }

    const size_t qrows = quick ? 256 : 1024;
    const size_t qcols = 1024;
    std::vector<QuantResult> quant;
    const std::pair<ElementFormat, MxMode> qconfigs[] = {
        {ElementFormat::E2M1, MxMode::Standard},
        {ElementFormat::E2M1, MxMode::Plus},
        {ElementFormat::E2M1, MxMode::PlusPlus},
        {ElementFormat::E4M3, MxMode::Standard},
        {ElementFormat::INT8, MxMode::Plus},
    };
    for (const auto &[fmt, mode] : qconfigs) {
        std::fprintf(stderr, "quantize %d/%d...\n", static_cast<int>(fmt),
                     static_cast<int>(mode));
        quant.push_back(benchQuantize(fmt, mode, qrows, qcols, min_time));
    }
    quant.push_back(
        benchPack(ElementFormat::E2M1, MxMode::Plus, qrows, qcols,
                  min_time));
    // Frozen-page codec rows: encode and decode throughput over the
    // K/V code distributions the serving pool actually compresses.
    for (const char *api : {"codecEncode", "codecDecode"}) {
        for (const auto &[fmt, mode] :
             {std::pair<ElementFormat, MxMode>{ElementFormat::E2M1,
                                               MxMode::Plus},
              std::pair<ElementFormat, MxMode>{ElementFormat::E4M3,
                                               MxMode::Standard}}) {
            std::fprintf(stderr, "codec %s %d/%d...\n", api,
                         static_cast<int>(fmt), static_cast<int>(mode));
            quant.push_back(
                benchCodec(api, fmt, mode, qrows, qcols, min_time));
        }
    }

    FILE *out = stdout;
    if (out_path != nullptr) {
        out = std::fopen(out_path, "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", out_path);
            return 1;
        }
    }

    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"bench_kernels_engine\",\n");
    std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(out, "  \"simd_uses_avx2\": %s,\n",
                 KernelDispatch::simdUsesAvx2() ? "true" : "false");
    std::fprintf(out, "  \"gemm\": [\n");
    for (size_t i = 0; i < gemm.size(); ++i) {
        const auto &g = gemm[i];
        std::fprintf(out,
                     "    {\"op\": \"%s\", \"m\": %zu, \"n\": %zu, "
                     "\"k\": %zu, \"reference_gflops\": %.3f, "
                     "\"simd_gflops\": %.3f, \"speedup\": %.2f}%s\n",
                     g.op, g.m, g.n, g.k, g.ref_gflops, g.simd_gflops,
                     g.simd_gflops / g.ref_gflops,
                     i + 1 < gemm.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"quantize\": [\n");
    for (size_t i = 0; i < quant.size(); ++i) {
        const auto &q = quant[i];
        std::fprintf(out,
                     "    {\"api\": \"%s\", \"format\": \"%s\", "
                     "\"mode\": \"%s\", \"reference_gbps\": %.3f, "
                     "\"simd_gbps\": %.3f, \"speedup\": %.2f}%s\n",
                     q.api, q.format.c_str(), q.mode, q.ref_gbps,
                     q.simd_gbps, q.simd_gbps / q.ref_gbps,
                     i + 1 < quant.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n");
    std::fprintf(out, "}\n");
    if (out != stdout)
        std::fclose(out);
    return 0;
}
