/**
 * @file
 * Table 11: NVFP4 vs NVFP4+ (the MX+ extension applied to NVIDIA's
 * 16-element E4M3-scaled 4-bit format) on the zero-shot task suite.
 * Expected shape: NVFP4+ above NVFP4 on every task.
 */

#include <cstdio>

#include "bench_util.h"
#include "model/eval.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 11: NVFP4 vs NVFP4+ zero-shot accuracy (%)");
    const auto tasks =
        bench::fullRuns() ? paperTaskSuite() : quickTaskSuite();

    for (const auto &cfg : {simLlama31_8b(), simMistral7b()}) {
        const Transformer model(cfg);
        std::printf("\n-- %s --\n", cfg.name.c_str());
        std::vector<std::string> head;
        for (const auto &t : tasks)
            head.push_back(t.name.substr(0, 10));
        bench::row("format", head);

        std::vector<TaskSet> sets;
        for (const auto &spec : tasks)
            sets.push_back(makeTaskSet(model, spec, 78));

        for (const char *fmt : {"NVFP4", "NVFP4+"}) {
            std::vector<std::string> cells;
            for (const auto &set : sets) {
                cells.push_back(bench::num(
                    taskAccuracy(model, set,
                                 QuantConfig::fromFormat(fmt)), 1));
            }
            bench::row(fmt, cells);
        }
    }
    std::printf("\n(paper shape: NVFP4+ >= NVFP4 on every task; MXFP4+ "
                "comparable or better thanks to extra BM precision)\n");
    return 0;
}
