/**
 * @file
 * Table 3: perplexity across two corpora ("wiki-like" and "web-like", the
 * WikiText-2 / C4 substitutes) and two sequence lengths, for all formats.
 * Expected shape: MX+ and MX++ always below their MX counterparts;
 * MXFP4 collapses; orderings consistent across corpora and lengths.
 */

#include <cstdio>

#include "bench_util.h"
#include "model/eval.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 3: perplexity, direct-cast");
    const std::vector<size_t> seqlens = bench::fullRuns()
        ? std::vector<size_t>{1024, 2048}
        : std::vector<size_t>{256, 512};
    const size_t n_seq = bench::fullRuns() ? 4 : 2;

    const auto models =
        bench::fullRuns() ? paperModelSuite() : quickModelSuite();
    const std::vector<std::string> formats = {
        "BF16", "MXFP8+", "MXFP8", "MXFP6+", "MXFP6",
        "MXFP4++", "MXFP4+", "A-MXFP4+", "MXFP4"};

    for (const size_t seq : seqlens) {
        std::printf("\n--- sequence length %zu ---\n", seq);
        std::vector<std::string> head;
        for (const auto &cfg : models) {
            head.push_back(cfg.name.substr(4, 9) + ":wiki");
            head.push_back(cfg.name.substr(4, 9) + ":web");
        }
        bench::row("format", head);

        // Datasets per model (generated once per seqlen).
        std::vector<Transformer> xs;
        std::vector<Dataset> wiki;
        std::vector<Dataset> web;
        for (const auto &cfg : models) {
            xs.emplace_back(cfg);
            wiki.push_back(makeTeacherDataset(xs.back(), "wiki-sim",
                                              n_seq, seq, 1.0, 42));
            web.push_back(makeTeacherDataset(xs.back(), "web-sim",
                                             n_seq, seq, 1.15, 43));
        }

        for (const auto &fmt : formats) {
            std::vector<std::string> cells;
            for (size_t mi = 0; mi < xs.size(); ++mi) {
                QuantConfig qc;
                if (fmt == "BF16") {
                    qc = QuantConfig::bf16Baseline();
                } else if (fmt == "A-MXFP4+") {
                    qc = QuantConfig::fromFormats("MXFP4+", "MXFP4");
                } else {
                    qc = QuantConfig::fromFormat(fmt);
                }
                cells.push_back(
                    bench::num(perplexity(xs[mi], wiki[mi], qc)));
                cells.push_back(
                    bench::num(perplexity(xs[mi], web[mi], qc)));
            }
            bench::row(fmt, cells);
        }
    }
    std::printf("\n(paper shape: MX+/MX++ always lower than MX at the "
                "same width, across datasets and sequence lengths)\n");
    return 0;
}
