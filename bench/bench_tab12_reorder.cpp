/**
 * @file
 * Table 12: MXFP4+ with channel reordering applied to the query and key
 * matrices (Section 8.3) on the zero-shot task suite. Expected shape:
 * Reorder >= plain MXFP4+ on every task, because scattering co-located
 * outliers lets more of them become the block-max of their own block.
 * A 2-head model variant (head dim 64 = two MX blocks) is used so that
 * reordering within a head is meaningful.
 */

#include <cstdio>

#include "baselines/format_quantizers.h"
#include "baselines/reorder_quantizer.h"
#include "bench_util.h"
#include "model/eval.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 12: MXFP4+ with query/key channel reordering");
    const auto tasks =
        bench::fullRuns() ? paperTaskSuite() : quickTaskSuite();

    for (ModelConfig cfg : {simLlama31_8b(), simMistral7b()}) {
        // Two heads -> head dim 64 -> two MX blocks per Q/K row, so
        // reordering can scatter co-located outliers.
        cfg.n_heads = 2;
        cfg.name += "-h2";
        const Transformer model(cfg);
        std::printf("\n-- %s --\n", cfg.name.c_str());
        std::vector<std::string> head;
        for (const auto &t : tasks)
            head.push_back(t.name.substr(0, 10));
        bench::row("scheme", head);

        std::vector<TaskSet> sets;
        for (const auto &spec : tasks)
            sets.push_back(makeTaskSet(model, spec, 79));

        // Plain MXFP4+.
        QuantConfig plain = QuantConfig::fromFormat("MXFP4+");
        // MXFP4+ with reordered query/key quantization.
        QuantConfig reorder = QuantConfig::fromFormat("MXFP4+");
        reorder.qk_override = std::make_shared<ReorderQuantizer>(
            makeQuantizerByName("MXFP4+"));

        for (const auto &[label, qc] :
             {std::pair<const char *, QuantConfig &>{"MXFP4+", plain},
              {"Reorder", reorder}}) {
            std::vector<std::string> cells;
            for (const auto &set : sets)
                cells.push_back(
                    bench::num(taskAccuracy(model, set, qc), 1));
            bench::row(label, cells);
        }
    }
    std::printf("\n(paper shape: reordering improves every task by "
                "scattering multi-outlier blocks)\n");
    return 0;
}
