/**
 * @file
 * Table 7: perplexity of MX+ vs outlier-aware quantization schemes
 * (SmoothQuant, QuaRot, Atom, ANT, OliVe, Tender and their MX-granularity
 * variants) under the intersection protocol: only weight-activation
 * linears are quantized, the LM head and attention stay in BF16.
 * Expected shape: per-tensor ANT/OliVe/Tender and SMQ-INT4 collapse;
 * MX-granularity variants recover; MXFP4+/MXFP4++ best at 4 bits.
 */

#include <cstdio>

#include "baselines/scheme_factory.h"
#include "bench_util.h"
#include "model/eval.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 7: perplexity vs other quantization schemes "
                  "(linears only, head/attention BF16)");
    const size_t seq = bench::fullRuns() ? 1024 : 320;
    const size_t n_seq = bench::fullRuns() ? 4 : 2;

    const auto models = bench::fullRuns()
        ? std::vector<ModelConfig>{simOpt66b(), simLlama2_7b(),
                                   simLlama2_13b(), simLlama31_8b(),
                                   simMistral7b(), simQwen25_14b()}
        : std::vector<ModelConfig>{simLlama31_8b(), simMistral7b()};

    std::vector<std::string> head;
    for (const auto &cfg : models)
        head.push_back(cfg.name.substr(4));
    bench::row("scheme", head);

    std::vector<Transformer> xs;
    std::vector<Dataset> data;
    std::vector<std::vector<int>> calib;
    for (const auto &cfg : models) {
        xs.emplace_back(cfg);
        data.push_back(makeTeacherDataset(xs.back(), "wiki-sim", n_seq,
                                          seq, 1.0, 42));
        Rng rng(55);
        calib.push_back(xs.back().sample(rng, 128, 1.0));
    }

    for (const auto &scheme_name : table7SchemeNames()) {
        std::vector<std::string> cells;
        for (size_t mi = 0; mi < xs.size(); ++mi) {
            QuantConfig qc = QuantConfig::bf16Baseline();
            qc.quantize_head = false;
            if (scheme_name != "BF16") {
                qc.scheme_lookup = calibrateSchemes(
                    xs[mi], calib[mi],
                    [&] { return makeSchemeByName(scheme_name); });
            }
            cells.push_back(
                bench::num(perplexity(xs[mi], data[mi], qc)));
        }
        bench::row(scheme_name, cells);
    }
    std::printf("\n(paper shape: per-tensor schemes collapse at 4 bits; "
                "MX-granularity variants recover; MXFP4+ and MXFP4++ "
                "lowest among 4-bit schemes)\n");
    return 0;
}
