/**
 * @file
 * Figure 12: prefill execution time of MXFP4+ with HARDWARE integration
 * (FSU/BCU in the Tensor Core), normalized to MXFP4, for a 2048-token
 * request. Expected shape: within ~0.5% of MXFP4 for every model (the
 * BCU does not affect MMA throughput; only the extra register-file
 * access remains).
 */

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "gpusim/llm_timing.h"

using namespace mxplus;

int
main()
{
    bench::header("Figure 12: HW-integrated MXFP4+ prefill time, "
                  "normalized to MXFP4 (2048 input tokens)");
    const GpuConfig gpu = GpuConfig::rtx5090();
    bench::row("model", {"normalized"});

    double geo = 1.0;
    int count = 0;
    for (const LlmDims &model :
         {LlmDims::llama2_7b(), LlmDims::llama2_13b(),
          LlmDims::llama31_8b()}) {
        ServingConfig base;
        base.batch = 1;
        base.input_tokens = 2048;
        base.output_tokens = 0;
        base.act_format = OperandFormat::MXFP4;
        base.weight_format = OperandFormat::MXFP4;
        base.path = IntegrationPath::DirectMx;

        ServingConfig hw = base;
        hw.act_format = OperandFormat::MXFP4Plus;
        hw.weight_format = OperandFormat::MXFP4Plus;
        hw.path = IntegrationPath::MxPlusHardware;

        const double t0 = servingTime(gpu, model, base).prefill_ms;
        const double t1 = servingTime(gpu, model, hw).prefill_ms;
        bench::row(model.name, {bench::num(t1 / t0, 4)});
        geo *= t1 / t0;
        ++count;
    }
    bench::row("geomean", std::vector<std::string>{
        bench::num(std::pow(geo, 1.0 / count), 4)});
    std::printf("\n(paper: 0.38%% average slowdown — the BCU computes "
                "beside the adder tree without stalling the pipeline)\n");
    return 0;
}
