/**
 * @file
 * Machine-readable benchmark of the batched serving engine: decode
 * throughput (tokens/s), time-to-first-token and per-token latency
 * percentiles as a function of batch width and quantization format,
 * plus paged-KV occupancy and admission metrics, emitted as JSON so
 * future PRs have a serving-performance trajectory to regress against
 * (the committed snapshot lives in BENCH_serving.json; the CI gate
 * tools/check_bench.py compares against it on every PR).
 *
 * The HEADLINE traffic shape is the poisson workload: open-loop
 * requests-per-second arrivals (seeded exponential inter-arrival times
 * drawn once, submitted when their arrival time passes on the virtual
 * step clock — an overloaded engine keeps receiving work, which is the
 * point of open-loop). Reported per row: offered_rps, ttft_p99_ms and
 * goodput_ok_fraction — all measured on the virtual clock, so the
 * num_threads=1 rows are deterministic and gated by
 * tools/check_bench.py. The same arrival trace then runs with
 * num_threads=2 (decode worker pool) and through AsyncFrontEnd with
 * racing producer threads ("poisson-async"); those rows are ungated
 * (CI boxes are single-core) but their token streams are verified
 * bit-identical before any number is emitted — threading is a
 * throughput decision, never a numerics decision.
 *
 * The uniform workload is fixed across batch widths — the same
 * requests, prompts and greedy sampling — so the batch-8 vs batch-1
 * ratio isolates the benefit of continuous batching (amortized weight
 * quantization and B-panel packing in the batched matvec) from
 * everything else. A --quick run uses the SAME per-config workload and
 * a subset of (format, batch) points, so its entries are directly
 * comparable to the committed full baseline.
 *
 * The mixed workload varies prompt and generation lengths across
 * requests; its kv_bytes_peak (live pages) sits well below the
 * worst-case reservation a contiguous per-request cache would pin
 * (kv_bytes_reserved_worst), which is the paged cache's point. The
 * budgeted variant additionally caps the pool and reports admission
 * deferrals.
 *
 * The bursty workload interleaves long low-priority and short
 * high-priority requests as one burst against a tight KV budget and
 * runs twice at the SAME budget: with optimistic over-admission +
 * preempt-and-requeue ("bursty") and with PR4's reject-only admission
 * ("bursty-reject"). Token streams are verified identical before any
 * number is emitted — preemption restarts are bit-exact. The
 * interesting metrics are throughput/occupancy (over-admission keeps
 * the batch full), ttft_p99_ms (gated by tools/check_bench.py for
 * these rows), preemptions/preempted_recompute_tokens (the price of
 * optimism) and queue_wait_ms_p50/p99 (aging bounds the wait).
 *
 * The shared-prefix workload is N requests carrying one common
 * 256-token system prompt plus distinct tails — the dominant heavy-
 * multi-user pattern. It runs twice, with the prefix cache on
 * ("shared-prefix") and off ("shared-prefix-nocache"), and the bench
 * *verifies* the two runs' token streams are bit-identical before
 * emitting numbers: sharing is a scheduling decision, never a numerics
 * decision. The interesting metrics are ttft_p50_ms (repeated prefill
 * becomes a cache hit) and kv_bytes_peak (one physical copy of the
 * prefix instead of N); tools/check_bench.py gates both for this
 * workload.
 *
 * The compressed pairs measure frozen-page compression's capacity win
 * at unchanged numerics: "shared-prefix-budget" vs
 * "shared-prefix-compressed" run the shared-prefix workload under the
 * SAME kv_budget_tokens (warmed, so the head is published — and, when
 * on, compressed — before the burst), and the bench FATALs unless the
 * compressed run's streams are bit-identical, its kv_bytes_peak is
 * lower AND it admits strictly more of the burst before the first
 * deferral. "sharded-compressed" reruns the affinity fleet with
 * compression armed on every shard under the same stream-equality and
 * lower-residency requirements. tools/check_bench.py gates ttft_p50_ms
 * and kv_bytes_peak for all three rows.
 *
 * The sharded workload is four request families (per-family shared
 * system prompts + distinct tails) served by a 4-shard fleet under
 * both routing policies, next to a single-engine reference, a
 * crash-failover run (one shard killed mid-run, its in-flight requests
 * re-submitted to the survivors) and a live threaded ShardedFrontEnd
 * run. The serial fleet rows run on the virtual clock (deterministic,
 * gated: ttft_p50_ms and kv_bytes_peak; for the failover row,
 * ttft_p99_ms and goodput_ok_fraction — the rerouted tail and the
 * requirement that a crash never loses a request); the
 * affinity-vs-round-robin delta is the router's headline — one
 * physical prefix copy per family instead of one per family per shard.
 * All five variants' token streams are verified bit-identical before
 * any number is emitted.
 *
 * Usage: bench_serving [--quick] [--out FILE]
 *
 *  --quick   fewer configs, same workload (CI gate run)
 *  --out     write the JSON to FILE instead of stdout
 *
 * See docs/SERVING.md for the schema and how to interpret the output.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "model/quant_config.h"
#include "serve/async_engine.h"
#include "serve/router.h"
#include "serve/serving_engine.h"

namespace mxplus {
namespace {

struct RunResult
{
    std::string format;
    std::string workload; // "uniform" / "mixed" / "mixed-budget"
    size_t batch = 0;
    size_t requests = 0;
    double throughput_tok_s = 0.0;
    double decode_tok_s = 0.0;
    double ttft_p50_ms = 0.0;
    double ttft_p99_ms = 0.0;
    double token_p50_ms = 0.0;
    double token_p99_ms = 0.0;
    double mean_batch_occupancy = 0.0;
    size_t kv_bytes_peak = 0;
    size_t kv_pages_peak = 0;
    size_t kv_bytes_reserved_worst = 0;
    size_t prefill_chunks = 0;
    size_t admission_deferred_steps = 0;
    size_t prefix_hit_tokens = 0;
    size_t preemptions = 0;
    size_t preempted_recompute_tokens = 0;
    double queue_wait_ms_p50 = 0.0;
    double queue_wait_ms_p99 = 0.0;
    size_t shed = 0;
    size_t timed_out = 0;
    size_t cancelled = 0;
    size_t checksum_failures = 0;
    size_t kv_bytes_reserved_peak = 0;
    double compressed_ratio = 1.0;
    size_t admitted_before_first_defer = 0;
    double goodput_ok_fraction = 0.0;
    double speedup_vs_batch1 = 0.0;
    size_t num_threads = 1;    ///< EngineOptions::num_threads of the run
    double offered_rps = 0.0;  ///< poisson rows only: open-loop rate
    std::vector<std::vector<int>> streams; ///< per-request tokens
};

/**
 * Step watchdog for every engine run the bench drives: a scheduling
 * bug that livelocks (admit/preempt ping-pong, a request that can
 * never fit) must fail the bench loudly, not hang the CI job until
 * the ctest timeout reaps it with no diagnostics. The cap is ~100x
 * the longest legitimate run in this file.
 */
constexpr size_t kMaxBenchSteps = 200000;

std::vector<ServeRequest>
uniformWorkload(size_t requests, size_t prompt_len, size_t new_tokens)
{
    std::vector<ServeRequest> reqs(requests);
    for (size_t r = 0; r < requests; ++r) {
        reqs[r].prompt.resize(prompt_len);
        for (size_t i = 0; i < prompt_len; ++i) {
            reqs[r].prompt[i] =
                static_cast<int>((13 + 7 * r + 3 * i) % 251);
        }
        reqs[r].max_new_tokens = new_tokens;
        reqs[r].temperature = 0.0; // greedy: identical across batch widths
    }
    return reqs;
}

/**
 * N requests × one common system prompt + distinct tails: the pattern
 * prefix sharing exists for. The shared head is page-aligned (256 =
 * 8 × 32-token pages) so the whole head is adoptable.
 */
std::vector<ServeRequest>
sharedPrefixWorkload(size_t requests, size_t shared_len, size_t tail_len,
                     size_t new_tokens)
{
    std::vector<int> head(shared_len);
    for (size_t i = 0; i < shared_len; ++i)
        head[i] = static_cast<int>((29 + 3 * i) % 251);
    std::vector<ServeRequest> reqs(requests);
    for (size_t r = 0; r < requests; ++r) {
        reqs[r].prompt = head;
        for (size_t i = 0; i < tail_len; ++i) {
            reqs[r].prompt.push_back(
                static_cast<int>((41 + 7 * r + 5 * i) % 251));
        }
        reqs[r].max_new_tokens = new_tokens;
        reqs[r].temperature = 0.0;
    }
    return reqs;
}

/**
 * Sharded-fleet workload: @p families groups of @p per requests, each
 * group sharing a page-aligned per-family system prompt plus distinct
 * tails — the multi-tenant pattern prefix-affinity routing exists for.
 * Routed by affinity, a family lands wholly on one shard (one physical
 * prefix copy, cache hits for every sibling); routed round-robin, every
 * shard re-prefills and caches its own copy of every family head.
 */
std::vector<ServeRequest>
shardedWorkload(size_t families, size_t per, size_t shared_len,
                size_t tail_len, size_t new_tokens)
{
    std::vector<ServeRequest> reqs;
    for (size_t f = 0; f < families; ++f) {
        std::vector<int> head(shared_len);
        for (size_t i = 0; i < shared_len; ++i)
            head[i] = static_cast<int>((29 + (3 + 2 * f) * i + f) % 251);
        for (size_t r = 0; r < per; ++r) {
            ServeRequest req;
            req.prompt = head;
            for (size_t i = 0; i < tail_len; ++i) {
                req.prompt.push_back(static_cast<int>(
                    (41 + 7 * (f * per + r) + 5 * i) % 251));
            }
            req.max_new_tokens = new_tokens;
            req.temperature = 0.0;
            reqs.push_back(std::move(req));
        }
    }
    return reqs;
}

/**
 * Bursty mixed-priority workload: interleaved long low-priority jobs
 * (small prompt, long generation — worst-case reservations far above
 * early live usage) and short high-priority jobs, all submitted as one
 * burst against a tight KV budget. Reject-only admission (factor 1)
 * idles slots on the pessimistic reservations; over-admission fills
 * them and settles the occasional loss by preempt-and-requeue.
 */
std::vector<ServeRequest>
burstyWorkload(size_t requests)
{
    std::vector<ServeRequest> reqs(requests);
    for (size_t r = 0; r < requests; ++r) {
        // Two long low-priority jobs per short high-priority one: the
        // long tails carry the reservation slack over-admission bets
        // on, the shorts carry the tail-latency story.
        const bool lng = r % 3 != 2;
        reqs[r].prompt.resize(8);
        for (size_t i = 0; i < reqs[r].prompt.size(); ++i) {
            reqs[r].prompt[i] =
                static_cast<int>((17 + 9 * r + 5 * i) % 251);
        }
        reqs[r].max_new_tokens = lng ? 56 : 16;
        reqs[r].priority = lng ? 0 : 4;
        reqs[r].temperature = 0.0;
    }
    return reqs;
}

/**
 * Overload workload: more work than the deadline allows. Mixed
 * priorities, every request under an end-to-end deadline, submitted as
 * one burst against a bounded queue — some requests complete, some are
 * shed at admission, some time out mid-flight. Run on the virtual step
 * clock (step_time_ms) so the shed/timed-out split is a pure function
 * of scheduling, identical on every machine; the interesting metric is
 * goodput_ok_fraction (completed-in-deadline / submitted).
 */
std::vector<ServeRequest>
overloadWorkload(size_t requests)
{
    std::vector<ServeRequest> reqs(requests);
    for (size_t r = 0; r < requests; ++r) {
        const size_t prompt_len = 16 + 4 * (r % 5);
        reqs[r].prompt.resize(prompt_len);
        for (size_t i = 0; i < prompt_len; ++i) {
            reqs[r].prompt[i] =
                static_cast<int>((23 + 11 * r + 3 * i) % 251);
        }
        reqs[r].max_new_tokens = 24;
        reqs[r].priority = static_cast<int>(r % 4) - 1; // -1..2
        reqs[r].temperature = 0.0;
    }
    return reqs;
}

/**
 * Poisson open-loop workload: varied short requests (the interactive
 * traffic an rps number describes) plus a pre-drawn arrival time per
 * request. Inter-arrival gaps are exponential with the given mean,
 * from a fixed seed — the trace is part of the workload geometry, so
 * every variant (serial, worker pool, async) serves the SAME arrivals
 * and the gated rows are deterministic on the virtual clock.
 */
std::vector<ServeRequest>
poissonWorkload(size_t requests)
{
    std::vector<ServeRequest> reqs(requests);
    for (size_t r = 0; r < requests; ++r) {
        const size_t prompt_len = 12 + 4 * (r % 5);
        reqs[r].prompt.resize(prompt_len);
        for (size_t i = 0; i < prompt_len; ++i) {
            reqs[r].prompt[i] =
                static_cast<int>((37 + 13 * r + 7 * i) % 251);
        }
        reqs[r].max_new_tokens = 10 + 4 * (r % 3);
        reqs[r].temperature = 0.0;
    }
    return reqs;
}

std::vector<double>
poissonArrivals(size_t requests, double mean_interarrival_ms,
                uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> arrival_ms(requests);
    double t = 0.0;
    for (size_t r = 0; r < requests; ++r) {
        // Inverse-CDF exponential; uniform() is in [0, 1) so the log
        // argument is in (0, 1].
        t += -mean_interarrival_ms * std::log(1.0 - rng.uniform());
        arrival_ms[r] = t;
    }
    return arrival_ms;
}

/** Short and long requests interleaved (prompts 8..92, 8..43 new). */
std::vector<ServeRequest>
mixedWorkload(size_t requests)
{
    std::vector<ServeRequest> reqs(requests);
    for (size_t r = 0; r < requests; ++r) {
        const size_t prompt_len = 8 + 12 * r;
        reqs[r].prompt.resize(prompt_len);
        for (size_t i = 0; i < prompt_len; ++i) {
            reqs[r].prompt[i] =
                static_cast<int>((31 + 5 * r + 11 * i) % 251);
        }
        reqs[r].max_new_tokens = 8 + 5 * r;
        reqs[r].temperature = 0.0;
    }
    return reqs;
}

/**
 * Fill a RunResult from a DRAINED engine: shared by the batch-at-once
 * runner (runConfig), the open-loop poisson runner and the async
 * front-end runner, so every traffic shape reports the same schema.
 * @p ids maps request index -> engine id (submission interfaces
 * differ; the per-request stats lookup does not).
 */
RunResult
collectResult(const ServingEngine &engine, const Transformer &model,
              const std::string &format, const std::string &workload_name,
              const std::vector<ServeRequest> &reqs,
              const std::vector<size_t> &ids, const EngineOptions &opts)
{
    const size_t pt = engine.pool().pageTokens();
    const size_t page_bytes = engine.pool().pageBytes();
    const size_t layers = model.config().n_layers;
    size_t reserved_worst = 0;
    for (const auto &req : reqs) {
        const size_t tokens = req.prompt.size() + req.max_new_tokens;
        reserved_worst += (tokens + pt - 1) / pt * layers * page_bytes;
    }

    RunResult res;
    res.format = format;
    res.workload = workload_name;
    res.batch = opts.max_batch;
    res.requests = reqs.size();
    res.num_threads = opts.num_threads;
    res.kv_bytes_reserved_worst = reserved_worst;
    const EngineStats &es = engine.engineStats();
    res.throughput_tok_s = es.throughput_tokens_per_s;
    res.decode_tok_s = es.decode_tokens_per_s;
    res.mean_batch_occupancy = es.mean_batch_occupancy;
    res.kv_bytes_peak = es.kv_bytes_peak;
    res.kv_pages_peak = es.kv_pages_peak;
    res.prefill_chunks = es.prefill_chunks;
    res.admission_deferred_steps = es.admission_deferred_steps;
    res.prefix_hit_tokens = es.prefix_hit_tokens;
    res.preemptions = es.preemptions;
    res.preempted_recompute_tokens = es.preempted_recompute_tokens;
    res.queue_wait_ms_p50 = es.queue_wait_ms_p50;
    res.queue_wait_ms_p99 = es.queue_wait_ms_p99;
    res.shed = es.shed_requests;
    res.timed_out = es.timed_out_requests;
    res.cancelled = es.cancelled_requests;
    res.checksum_failures = es.checksum_failures;
    res.kv_bytes_reserved_peak = es.kv_bytes_reserved_peak;
    res.compressed_ratio = es.compressed_ratio;
    res.admitted_before_first_defer = es.admitted_before_first_defer;
    res.goodput_ok_fraction = es.goodput_ok_fraction;

    std::vector<double> ttfts;
    std::vector<double> token_ms;
    for (size_t id : ids) {
        const RequestStats &rs = engine.stats(id);
        res.streams.push_back(rs.generated);
        if (rs.generated.empty())
            continue; // rejected/shed: a 0.0 ttft would deflate p50/p99
        ttfts.push_back(rs.ttft_ms);
        token_ms.insert(token_ms.end(), rs.token_ms.begin(),
                        rs.token_ms.end());
    }
    res.ttft_p50_ms = latencyPercentile(ttfts, 0.50);
    res.ttft_p99_ms = latencyPercentile(ttfts, 0.99);
    res.token_p50_ms = latencyPercentile(token_ms, 0.50);
    res.token_p99_ms = latencyPercentile(token_ms, 0.99);
    return res;
}

RunResult
runConfig(const Transformer &model, const std::string &format,
          const std::string &workload_name,
          const std::vector<ServeRequest> &reqs, EngineOptions opts)
{
    const QuantConfig qc = QuantConfig::fromFormat(format);
    ServingEngine engine(model, qc, opts);
    std::vector<size_t> ids;
    for (const auto &req : reqs)
        ids.push_back(engine.submit(req));

    if (!engine.runToCompletion(kMaxBenchSteps)) {
        std::fprintf(stderr,
                     "bench_serving: FATAL %s %s did not drain within "
                     "%zu steps — scheduler livelock\n",
                     format.c_str(), workload_name.c_str(),
                     kMaxBenchSteps);
        std::exit(1);
    }
    return collectResult(engine, model, format, workload_name, reqs, ids,
                         opts);
}

/**
 * Budgeted shared-prefix pair runner: request 0 runs alone first, so
 * the shared head is published (and, when compression is on,
 * compressed) before the rest of the requests arrive as one burst.
 * The admission window therefore sees the cached head at its
 * RESIDENT charge — with compress_frozen_pages the same
 * kv_budget_tokens leaves a strictly wider window, so strictly more
 * of the burst admits before the first deferral. That capacity win
 * (admitted_before_first_defer, plus the lower kv_bytes_peak) is what
 * the shared-prefix-budget / shared-prefix-compressed pair measures.
 */
RunResult
runWarmedBudgetConfig(const Transformer &model, const std::string &format,
                      const std::string &workload_name,
                      const std::vector<ServeRequest> &reqs,
                      EngineOptions opts)
{
    const QuantConfig qc = QuantConfig::fromFormat(format);
    ServingEngine engine(model, qc, opts);
    std::vector<size_t> ids(reqs.size());
    ids[0] = engine.submit(reqs[0]);
    bool drained = engine.runToCompletion(kMaxBenchSteps);
    for (size_t r = 1; drained && r < reqs.size(); ++r)
        ids[r] = engine.submit(reqs[r]);
    drained = drained && engine.runToCompletion(kMaxBenchSteps);
    if (!drained) {
        std::fprintf(stderr,
                     "bench_serving: FATAL %s %s did not drain within "
                     "%zu steps — scheduler livelock\n",
                     format.c_str(), workload_name.c_str(),
                     kMaxBenchSteps);
        std::exit(1);
    }
    return collectResult(engine, model, format, workload_name, reqs, ids,
                         opts);
}

/**
 * Open-loop poisson runner: requests are submitted when their
 * pre-drawn arrival time passes on the virtual step clock, whatever
 * the engine's state — a saturated engine keeps receiving work, which
 * is what distinguishes an rps workload from batch-at-once. Requires
 * opts.step_time_ms > 0 (arrival times are virtual milliseconds).
 */
RunResult
runPoissonConfig(const Transformer &model, const std::string &format,
                 const std::string &workload_name,
                 const std::vector<ServeRequest> &reqs,
                 const std::vector<double> &arrival_ms, EngineOptions opts)
{
    const QuantConfig qc = QuantConfig::fromFormat(format);
    ServingEngine engine(model, qc, opts);
    std::vector<size_t> ids(reqs.size());
    std::vector<double> submit_ms(reqs.size(), 0.0);
    size_t next = 0;
    size_t steps = 0;
    while (next < reqs.size() || engine.queuedRequests() > 0 ||
           engine.activeRequests() > 0) {
        // step() advances the virtual clock even when idle, so gaps in
        // the arrival process pass in simulated time, not wall time.
        const double now_ms =
            static_cast<double>(steps) * opts.step_time_ms;
        while (next < reqs.size() && arrival_ms[next] <= now_ms) {
            submit_ms[next] = now_ms;
            ids[next] = engine.submit(reqs[next]);
            ++next;
        }
        engine.step();
        if (++steps > kMaxBenchSteps) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s %s did not drain "
                         "within %zu steps — scheduler livelock\n",
                         format.c_str(), workload_name.c_str(),
                         kMaxBenchSteps);
            std::exit(1);
        }
    }
    // Finalize aggregate stats over the drained engine.
    engine.runToCompletion(1);
    RunResult res = collectResult(engine, model, format, workload_name,
                                  reqs, ids, opts);

    // RequestStats::ttft_ms is engine-start-relative — fine when every
    // request is submitted up front, but under open-loop arrivals it
    // would mostly measure the arrival offset. Rebase each TTFT to the
    // request's own submit time (both on the virtual clock), which is
    // also the reference the deadline machinery uses.
    std::vector<double> ttfts;
    for (size_t r = 0; r < reqs.size(); ++r) {
        const RequestStats &rs = engine.stats(ids[r]);
        if (!rs.generated.empty())
            ttfts.push_back(rs.ttft_ms - submit_ms[r]);
    }
    res.ttft_p50_ms = latencyPercentile(ttfts, 0.50);
    res.ttft_p99_ms = latencyPercentile(ttfts, 0.99);
    return res;
}

/**
 * The same request set pushed through AsyncFrontEnd by racing producer
 * threads. Arrival pacing is the producers' (as fast as they can
 * submit), so per-request latency is not comparable to the open-loop
 * rows and the row is never gated — what IS checked, before any number
 * is emitted, is that every token stream is bit-identical to the
 * serial engine's (main() verifies against the deadline-free sync
 * reference).
 */
RunResult
runPoissonAsync(const Transformer &model, const std::string &format,
                const std::string &workload_name,
                const std::vector<ServeRequest> &reqs, EngineOptions opts)
{
    const QuantConfig qc = QuantConfig::fromFormat(format);
    constexpr size_t kProducers = 3;
    AsyncFrontEnd fe(model, qc, opts);
    std::vector<uint64_t> tickets(reqs.size());
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (size_t i = p; i < reqs.size(); i += kProducers)
                tickets[i] = fe.submit(reqs[i]);
        });
    }
    for (auto &t : producers)
        t.join();
    fe.drain();

    RunResult res;
    res.format = format;
    res.workload = workload_name;
    res.batch = opts.max_batch;
    res.requests = reqs.size();
    res.num_threads = opts.num_threads;
    const EngineStats &es = fe.engineStats();
    res.throughput_tok_s = es.throughput_tokens_per_s;
    res.decode_tok_s = es.decode_tokens_per_s;
    res.mean_batch_occupancy = es.mean_batch_occupancy;
    res.kv_bytes_peak = es.kv_bytes_peak;
    res.kv_pages_peak = es.kv_pages_peak;
    res.prefill_chunks = es.prefill_chunks;
    res.admission_deferred_steps = es.admission_deferred_steps;
    res.prefix_hit_tokens = es.prefix_hit_tokens;
    res.preemptions = es.preemptions;
    res.preempted_recompute_tokens = es.preempted_recompute_tokens;
    res.queue_wait_ms_p50 = es.queue_wait_ms_p50;
    res.queue_wait_ms_p99 = es.queue_wait_ms_p99;
    res.shed = es.shed_requests;
    res.timed_out = es.timed_out_requests;
    res.cancelled = es.cancelled_requests;
    res.checksum_failures = es.checksum_failures;
    res.kv_bytes_reserved_peak = es.kv_bytes_reserved_peak;
    res.compressed_ratio = es.compressed_ratio;
    res.admitted_before_first_defer = es.admitted_before_first_defer;
    res.goodput_ok_fraction = es.goodput_ok_fraction;
    std::vector<double> ttfts;
    std::vector<double> token_ms;
    for (uint64_t t : tickets) {
        const RequestStats &rs = fe.stats(t);
        res.streams.push_back(rs.generated);
        if (rs.generated.empty())
            continue;
        ttfts.push_back(rs.ttft_ms);
        token_ms.insert(token_ms.end(), rs.token_ms.begin(),
                        rs.token_ms.end());
    }
    res.ttft_p50_ms = latencyPercentile(ttfts, 0.50);
    res.ttft_p99_ms = latencyPercentile(ttfts, 0.99);
    res.token_p50_ms = latencyPercentile(token_ms, 0.50);
    res.token_p99_ms = latencyPercentile(token_ms, 0.99);
    return res;
}

/**
 * Deterministic sharded-fleet simulation: each request goes to the
 * shard @p shard_of says, then the per-shard engines run serially in
 * lock-step on the shared virtual clock (every engine steps once per
 * tick until the whole fleet is drained). No threads anywhere, so the
 * rows are a pure function of (workload, routing policy) and
 * tools/check_bench.py can gate their ttft_p50_ms / kv_bytes_peak on
 * any machine. Fleet aggregation: peaks and counters sum across
 * shards (shards are concurrent in simulated time), latency
 * percentiles pool every request's virtual-clock timings.
 */
RunResult
runShardedSim(const Transformer &model, const std::string &format,
              const std::string &workload_name,
              const std::vector<ServeRequest> &reqs,
              const std::vector<size_t> &shard_of, size_t num_shards,
              EngineOptions opts)
{
    const QuantConfig qc = QuantConfig::fromFormat(format);
    std::vector<std::unique_ptr<ServingEngine>> shards;
    for (size_t s = 0; s < num_shards; ++s)
        shards.emplace_back(new ServingEngine(model, qc, opts));
    std::vector<size_t> ids(reqs.size());
    for (size_t r = 0; r < reqs.size(); ++r)
        ids[r] = shards[shard_of[r]]->submit(reqs[r]);

    size_t steps = 0;
    bool busy = true;
    while (busy) {
        busy = false;
        for (auto &sh : shards) {
            if (sh->queuedRequests() > 0 || sh->activeRequests() > 0) {
                sh->step();
                busy = true;
            }
        }
        if (++steps > kMaxBenchSteps) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s %s did not drain "
                         "within %zu steps — scheduler livelock\n",
                         format.c_str(), workload_name.c_str(),
                         kMaxBenchSteps);
            std::exit(1);
        }
    }
    for (auto &sh : shards)
        sh->runToCompletion(1); // finalize aggregate stats

    RunResult res;
    res.format = format;
    res.workload = workload_name;
    res.batch = opts.max_batch;
    res.requests = reqs.size();
    res.num_threads = opts.num_threads;
    const size_t pt = shards[0]->pool().pageTokens();
    const size_t page_bytes = shards[0]->pool().pageBytes();
    const size_t layers = model.config().n_layers;
    for (const auto &req : reqs) {
        const size_t tokens = req.prompt.size() + req.max_new_tokens;
        res.kv_bytes_reserved_worst +=
            (tokens + pt - 1) / pt * layers * page_bytes;
    }
    double occupancy_weight = 0.0;
    double ratio_sum = 0.0;
    for (const auto &sh : shards) {
        const EngineStats &es = sh->engineStats();
        res.throughput_tok_s += es.throughput_tokens_per_s;
        res.decode_tok_s += es.decode_tokens_per_s;
        res.mean_batch_occupancy +=
            es.mean_batch_occupancy * static_cast<double>(es.total_generated);
        occupancy_weight += static_cast<double>(es.total_generated);
        res.kv_bytes_peak += es.kv_bytes_peak;
        res.kv_pages_peak += es.kv_pages_peak;
        res.prefill_chunks += es.prefill_chunks;
        res.admission_deferred_steps += es.admission_deferred_steps;
        res.prefix_hit_tokens += es.prefix_hit_tokens;
        res.preemptions += es.preemptions;
        res.preempted_recompute_tokens += es.preempted_recompute_tokens;
        res.shed += es.shed_requests;
        res.timed_out += es.timed_out_requests;
        res.cancelled += es.cancelled_requests;
        res.checksum_failures += es.checksum_failures;
        res.kv_bytes_reserved_peak += es.kv_bytes_reserved_peak;
        res.admitted_before_first_defer += es.admitted_before_first_defer;
        ratio_sum += es.compressed_ratio;
    }
    if (occupancy_weight > 0.0)
        res.mean_batch_occupancy /= occupancy_weight;
    // Every shard sees the same traffic mix, so the plain mean is an
    // honest fleet-level compression figure.
    res.compressed_ratio = ratio_sum / static_cast<double>(num_shards);

    std::vector<double> ttfts;
    std::vector<double> token_ms;
    size_t completed = 0;
    for (size_t r = 0; r < reqs.size(); ++r) {
        const RequestStats &rs = shards[shard_of[r]]->stats(ids[r]);
        res.streams.push_back(rs.generated);
        if (rs.outcome == RequestOutcome::kCompleted)
            ++completed;
        if (rs.generated.empty())
            continue;
        ttfts.push_back(rs.ttft_ms);
        token_ms.insert(token_ms.end(), rs.token_ms.begin(),
                        rs.token_ms.end());
    }
    res.goodput_ok_fraction =
        reqs.empty() ? 0.0
                     : static_cast<double>(completed) / reqs.size();
    res.ttft_p50_ms = latencyPercentile(ttfts, 0.50);
    res.ttft_p99_ms = latencyPercentile(ttfts, 0.99);
    res.token_p50_ms = latencyPercentile(token_ms, 0.50);
    res.token_p99_ms = latencyPercentile(token_ms, 0.99);
    return res;
}

/**
 * Crash-failover simulation on the virtual clock: the affinity fleet
 * from runShardedSim, but @p killed_shard crashes at @p kill_tick — it
 * never steps again, its aggregate stats are abandoned, and every
 * request it had not finished is re-submitted (from the router-side
 * request copies) to the least-loaded survivor, the serial twin of
 * ShardedFrontEnd::failShard. Restart-is-bit-exact makes the
 * survivor's regenerated stream THE stream; requests the victim
 * completed before the crash keep their original streams and timings.
 * No threads and no wall clock anywhere, so the row is deterministic
 * and tools/check_bench.py gates ttft_p99_ms (the failover tail: a
 * rerouted request's TTFT includes the re-prefill on the survivor —
 * every live engine steps every tick, idle or not, so the virtual
 * clocks stay aligned with the shared tick count) and
 * goodput_ok_fraction (a crash must never lose a request: 1.0 or the
 * gate fails).
 */
RunResult
runShardedFailoverSim(const Transformer &model, const std::string &format,
                      const std::string &workload_name,
                      const std::vector<ServeRequest> &reqs,
                      const std::vector<size_t> &shard_of,
                      size_t num_shards, size_t killed_shard,
                      size_t kill_tick, EngineOptions opts)
{
    const QuantConfig qc = QuantConfig::fromFormat(format);
    std::vector<std::unique_ptr<ServingEngine>> shards;
    for (size_t s = 0; s < num_shards; ++s)
        shards.emplace_back(new ServingEngine(model, qc, opts));
    std::vector<size_t> owner = shard_of; // final owner per request
    std::vector<size_t> ids(reqs.size());
    for (size_t r = 0; r < reqs.size(); ++r)
        ids[r] = shards[shard_of[r]]->submit(reqs[r]);

    size_t steps = 0;
    size_t rerouted = 0;
    bool killed = false;
    bool busy = true;
    while (busy) {
        if (!killed && steps >= kill_tick) {
            killed = true;
            for (size_t r = 0; r < reqs.size(); ++r) {
                if (owner[r] != killed_shard)
                    continue;
                const RequestStats &rs =
                    shards[killed_shard]->stats(ids[r]);
                if (rs.outcome == RequestOutcome::kCompleted)
                    continue; // finished pre-crash: its stream stands
                // Least-loaded survivor, lowest index breaking ties —
                // the serial twin of the router's pickShard().
                size_t best = 0;
                size_t best_load = SIZE_MAX;
                for (size_t s = 0; s < num_shards; ++s) {
                    if (s == killed_shard)
                        continue;
                    const size_t load = shards[s]->queuedRequests() +
                                        shards[s]->activeRequests();
                    if (load < best_load) {
                        best_load = load;
                        best = s;
                    }
                }
                owner[r] = best;
                ids[r] = shards[best]->submit(reqs[r]);
                ++rerouted;
            }
            // A kill that fires after the victim drained exercises
            // nothing — the row would silently measure plain sharding.
            // Config drift must fail loudly, like every other bench
            // invariant.
            if (rerouted == 0) {
                std::fprintf(stderr,
                             "bench_serving: FATAL %s %s kill tick %zu "
                             "fired after shard %zu drained — no "
                             "failover exercised; lower kill_tick\n",
                             format.c_str(), workload_name.c_str(),
                             kill_tick, killed_shard);
                std::exit(1);
            }
        }
        busy = false;
        for (size_t s = 0; s < num_shards; ++s) {
            if (killed && s == killed_shard)
                continue; // crashed: never steps again
            ServingEngine &sh = *shards[s];
            if (sh.queuedRequests() > 0 || sh.activeRequests() > 0)
                busy = true;
            // Step even when idle: every survivor's virtual clock then
            // stays aligned with the shared tick count, so a rerouted
            // request's ttft_ms includes the full failover gap.
            sh.step();
        }
        if (++steps > kMaxBenchSteps) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s %s did not drain "
                         "within %zu steps — scheduler livelock\n",
                         format.c_str(), workload_name.c_str(),
                         kMaxBenchSteps);
            std::exit(1);
        }
    }
    for (size_t s = 0; s < num_shards; ++s) {
        if (s != killed_shard)
            shards[s]->runToCompletion(1); // finalize aggregate stats
    }
    std::fprintf(stderr,
                 "  %s %s: shard %zu killed at tick %zu, %zu in-flight "
                 "request(s) failed over\n",
                 format.c_str(), workload_name.c_str(), killed_shard,
                 kill_tick, rerouted);

    RunResult res;
    res.format = format;
    res.workload = workload_name;
    res.batch = opts.max_batch;
    res.requests = reqs.size();
    res.num_threads = opts.num_threads;
    const size_t pt = shards[0]->pool().pageTokens();
    const size_t page_bytes = shards[0]->pool().pageBytes();
    const size_t layers = model.config().n_layers;
    for (const auto &req : reqs) {
        const size_t tokens = req.prompt.size() + req.max_new_tokens;
        res.kv_bytes_reserved_worst +=
            (tokens + pt - 1) / pt * layers * page_bytes;
    }
    // Fleet aggregation over SURVIVORS only: the victim's aggregate
    // stats die with it (exactly the failShard contract — only its
    // per-request results that completed pre-crash survive, via the
    // router-side copies read below).
    double occupancy_weight = 0.0;
    for (size_t s = 0; s < num_shards; ++s) {
        if (s == killed_shard)
            continue;
        const EngineStats &es = shards[s]->engineStats();
        res.throughput_tok_s += es.throughput_tokens_per_s;
        res.decode_tok_s += es.decode_tokens_per_s;
        res.mean_batch_occupancy +=
            es.mean_batch_occupancy * static_cast<double>(es.total_generated);
        occupancy_weight += static_cast<double>(es.total_generated);
        res.kv_bytes_peak += es.kv_bytes_peak;
        res.kv_pages_peak += es.kv_pages_peak;
        res.prefill_chunks += es.prefill_chunks;
        res.admission_deferred_steps += es.admission_deferred_steps;
        res.prefix_hit_tokens += es.prefix_hit_tokens;
        res.preemptions += es.preemptions;
        res.preempted_recompute_tokens += es.preempted_recompute_tokens;
        res.shed += es.shed_requests;
        res.timed_out += es.timed_out_requests;
        res.cancelled += es.cancelled_requests;
        res.checksum_failures += es.checksum_failures;
        res.kv_bytes_reserved_peak += es.kv_bytes_reserved_peak;
        res.admitted_before_first_defer += es.admitted_before_first_defer;
    }
    if (occupancy_weight > 0.0)
        res.mean_batch_occupancy /= occupancy_weight;

    std::vector<double> ttfts;
    std::vector<double> token_ms;
    size_t completed = 0;
    for (size_t r = 0; r < reqs.size(); ++r) {
        const RequestStats &rs = shards[owner[r]]->stats(ids[r]);
        res.streams.push_back(rs.generated);
        if (rs.outcome == RequestOutcome::kCompleted)
            ++completed;
        if (rs.generated.empty())
            continue;
        ttfts.push_back(rs.ttft_ms);
        token_ms.insert(token_ms.end(), rs.token_ms.begin(),
                        rs.token_ms.end());
    }
    res.goodput_ok_fraction =
        reqs.empty() ? 0.0
                     : static_cast<double>(completed) / reqs.size();
    res.ttft_p50_ms = latencyPercentile(ttfts, 0.50);
    res.ttft_p99_ms = latencyPercentile(ttfts, 0.99);
    res.token_p50_ms = latencyPercentile(token_ms, 0.50);
    res.token_p99_ms = latencyPercentile(token_ms, 0.99);
    return res;
}

/**
 * The same fleet served live: a ShardedFrontEnd with real shard
 * threads and racing producers, routing by prefix affinity. Reported
 * with num_threads = num_shards, so the row is never gated (CI boxes
 * are single-core) — main() verifies its token streams bit-identical
 * to the single-engine reference before the row is emitted, which is
 * the acceptance point: sharding and re-routing are throughput
 * decisions, never numerics decisions.
 */
RunResult
runShardedAsync(const Transformer &model, const std::string &format,
                const std::string &workload_name,
                const std::vector<ServeRequest> &reqs,
                const RouterOptions &router, EngineOptions opts)
{
    const QuantConfig qc = QuantConfig::fromFormat(format);
    constexpr size_t kProducers = 3;
    ShardedFrontEnd fe(model, qc, opts, router);
    std::vector<uint64_t> tickets(reqs.size());
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (size_t i = p; i < reqs.size(); i += kProducers)
                tickets[i] = fe.submit(reqs[i]);
        });
    }
    for (auto &t : producers)
        t.join();
    fe.drain();

    RunResult res;
    res.format = format;
    res.workload = workload_name;
    res.batch = opts.max_batch;
    res.requests = reqs.size();
    res.num_threads = router.num_shards; // shard threads: never gated
    const EngineStats &es = fe.engineStats();
    res.throughput_tok_s = es.throughput_tokens_per_s;
    res.decode_tok_s = es.decode_tokens_per_s;
    res.mean_batch_occupancy = es.mean_batch_occupancy;
    res.kv_bytes_peak = es.kv_bytes_peak;
    res.kv_pages_peak = es.kv_pages_peak;
    res.prefill_chunks = es.prefill_chunks;
    res.admission_deferred_steps = es.admission_deferred_steps;
    res.prefix_hit_tokens = es.prefix_hit_tokens;
    res.preemptions = es.preemptions;
    res.preempted_recompute_tokens = es.preempted_recompute_tokens;
    res.queue_wait_ms_p50 = es.queue_wait_ms_p50;
    res.queue_wait_ms_p99 = es.queue_wait_ms_p99;
    res.shed = es.shed_requests;
    res.timed_out = es.timed_out_requests;
    res.cancelled = es.cancelled_requests;
    res.checksum_failures = es.checksum_failures;
    res.kv_bytes_reserved_peak = es.kv_bytes_reserved_peak;
    res.compressed_ratio = es.compressed_ratio;
    res.admitted_before_first_defer = es.admitted_before_first_defer;
    res.goodput_ok_fraction = es.goodput_ok_fraction;
    std::vector<double> ttfts;
    std::vector<double> token_ms;
    for (uint64_t t : tickets) {
        const RequestStats &rs = fe.stats(t);
        res.streams.push_back(rs.generated);
        if (rs.generated.empty())
            continue;
        ttfts.push_back(rs.ttft_ms);
        token_ms.insert(token_ms.end(), rs.token_ms.begin(),
                        rs.token_ms.end());
    }
    res.ttft_p50_ms = latencyPercentile(ttfts, 0.50);
    res.ttft_p99_ms = latencyPercentile(ttfts, 0.99);
    res.token_p50_ms = latencyPercentile(token_ms, 0.50);
    res.token_p99_ms = latencyPercentile(token_ms, 0.99);
    return res;
}

void
printResult(FILE *out, const RunResult &r, bool last)
{
    // Poisson rows carry their open-loop rate; other traffic shapes
    // have no rps to report, so the field is simply absent there.
    char rps[48] = "";
    if (r.workload.rfind("poisson", 0) == 0)
        std::snprintf(rps, sizeof rps, "\"offered_rps\": %.1f, ",
                      r.offered_rps);
    std::fprintf(
        out,
        "    {\"format\": \"%s\", \"workload\": \"%s\", \"batch\": %zu, "
        "\"num_threads\": %zu, %s"
        "\"throughput_tok_s\": %.1f, \"decode_tok_s\": %.1f, "
        "\"speedup_vs_batch1\": %.2f, "
        "\"ttft_p50_ms\": %.2f, \"ttft_p99_ms\": %.2f, "
        "\"token_p50_ms\": %.3f, \"token_p99_ms\": %.3f, "
        "\"mean_batch_occupancy\": %.2f, \"kv_bytes_peak\": %zu, "
        "\"kv_pages_peak\": %zu, \"kv_bytes_reserved_worst\": %zu, "
        "\"prefill_chunks\": %zu, \"admission_deferred_steps\": %zu, "
        "\"prefix_hit_tokens\": %zu, \"preemptions\": %zu, "
        "\"preempted_recompute_tokens\": %zu, "
        "\"queue_wait_ms_p50\": %.2f, \"queue_wait_ms_p99\": %.2f, "
        "\"shed\": %zu, \"timed_out\": %zu, \"cancelled\": %zu, "
        "\"checksum_failures\": %zu, "
        "\"kv_bytes_reserved_peak\": %zu, \"compressed_ratio\": %.2f, "
        "\"admitted_before_first_defer\": %zu, "
        "\"goodput_ok_fraction\": %.3f}%s\n",
        r.format.c_str(), r.workload.c_str(), r.batch, r.num_threads,
        rps, r.throughput_tok_s, r.decode_tok_s, r.speedup_vs_batch1,
        r.ttft_p50_ms, r.ttft_p99_ms, r.token_p50_ms, r.token_p99_ms,
        r.mean_batch_occupancy, r.kv_bytes_peak, r.kv_pages_peak,
        r.kv_bytes_reserved_worst, r.prefill_chunks,
        r.admission_deferred_steps, r.prefix_hit_tokens, r.preemptions,
        r.preempted_recompute_tokens, r.queue_wait_ms_p50,
        r.queue_wait_ms_p99, r.shed, r.timed_out, r.cancelled,
        r.checksum_failures, r.kv_bytes_reserved_peak,
        r.compressed_ratio, r.admitted_before_first_defer,
        r.goodput_ok_fraction, last ? "" : ",");
}

} // namespace
} // namespace mxplus

int
main(int argc, char **argv)
{
    using namespace mxplus;

    bool quick = false;
    const char *out_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    // The widest sim-Llama stand-in: its d=256 linears dominate the
    // per-request attention work the way real serving GEMMs do, so the
    // batch-scaling numbers are representative.
    const ModelConfig cfg = simLlama31_70b();
    const Transformer model(cfg);

    // Quick mode keeps the workload identical and trims the config
    // grid, so every quick entry matches a full-run baseline entry by
    // (format, workload, batch) — that is what makes the CI regression
    // gate's comparisons apples-to-apples.
    const std::vector<std::string> formats =
        quick ? std::vector<std::string>{"BF16", "MXFP4+"}
              : std::vector<std::string>{"BF16", "MXFP8", "MXFP4+"};
    const std::vector<size_t> batches =
        quick ? std::vector<size_t>{1, 8}
              : std::vector<size_t>{1, 2, 4, 8};
    const size_t requests = 8;
    const size_t prompt_len = 32;
    const size_t new_tokens = 32;

    // Headline: the poisson open-loop rps workload. Per format, the
    // SAME pre-drawn arrival trace runs three ways — serial
    // (num_threads=1, the deterministic gated row), with the decode
    // worker pool (num_threads=2), and through AsyncFrontEnd with
    // racing producers — and every token stream is verified
    // bit-identical before a single number is emitted. The serial and
    // worker-pool runs share deadlines on the virtual clock (identical
    // scheduling, so identical timeout sets); the async run paces
    // arrivals by producer speed, so it is verified against a
    // deadline-free serial reference instead (a deadline cut is a
    // timing decision — the async run legitimately times out different
    // requests, but may never produce different TOKENS).
    const size_t poisson_requests = 18;
    const double poisson_interarrival_ms = 2.0;
    const uint64_t poisson_seed = 42;
    const double poisson_deadline_ms = 120.0;
    const size_t poisson_batch = 4;
    const double poisson_rps = 1000.0 / poisson_interarrival_ms;
    std::vector<RunResult> poisson;
    for (const auto &fmt : formats) {
        std::fprintf(stderr, "serving %s poisson...\n", fmt.c_str());
        const auto reqs = poissonWorkload(poisson_requests);
        const auto arrivals = poissonArrivals(
            poisson_requests, poisson_interarrival_ms, poisson_seed);
        EngineOptions opts;
        opts.max_batch = poisson_batch;
        opts.step_time_ms = 1.0; // virtual clock: deterministic rows
        opts.deadline_ms = poisson_deadline_ms;
        RunResult serial =
            runPoissonConfig(model, fmt, "poisson", reqs, arrivals, opts);
        serial.offered_rps = poisson_rps;

        EngineOptions pooled = opts;
        pooled.num_threads = 2;
        RunResult threaded =
            runPoissonConfig(model, fmt, "poisson", reqs, arrivals, pooled);
        threaded.offered_rps = poisson_rps;
        if (threaded.streams != serial.streams) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s poisson token streams "
                         "diverge with num_threads=2 — the worker pool "
                         "must never change numerics\n",
                         fmt.c_str());
            return 1;
        }

        EngineOptions nodeadline = opts;
        nodeadline.deadline_ms = 0.0;
        const RunResult reference = runPoissonConfig(
            model, fmt, "poisson-ref", reqs, arrivals, nodeadline);
        EngineOptions async_opts = nodeadline;
        async_opts.num_threads = 2;
        RunResult async = runPoissonAsync(model, fmt, "poisson-async",
                                          reqs, async_opts);
        async.offered_rps = poisson_rps;
        if (async.streams != reference.streams) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s poisson token streams "
                         "diverge through the async front end — "
                         "concurrency must never change numerics\n",
                         fmt.c_str());
            return 1;
        }

        poisson.push_back(std::move(serial));
        poisson.push_back(std::move(threaded));
        poisson.push_back(std::move(async));
    }

    std::vector<RunResult> results;
    for (const auto &fmt : formats) {
        double batch1_tok_s = 0.0;
        for (size_t b : batches) {
            std::fprintf(stderr, "serving %s batch %zu...\n", fmt.c_str(),
                         b);
            EngineOptions opts;
            opts.max_batch = b;
            RunResult r = runConfig(
                model, fmt, "uniform",
                uniformWorkload(requests, prompt_len, new_tokens), opts);
            if (b == 1)
                batch1_tok_s = r.throughput_tok_s;
            r.speedup_vs_batch1 = batch1_tok_s > 0.0
                ? r.throughput_tok_s / batch1_tok_s
                : 0.0;
            results.push_back(std::move(r));
        }
    }

    // Mixed-length workloads at batch 8: live-page peak vs worst-case
    // reservation, plus a budget-capped run exercising admission.
    std::vector<RunResult> mixed;
    for (const auto &fmt : formats) {
        std::fprintf(stderr, "serving %s mixed...\n", fmt.c_str());
        EngineOptions opts;
        opts.max_batch = 8;
        mixed.push_back(runConfig(model, fmt, "mixed",
                                  mixedWorkload(requests), opts));
        EngineOptions capped = opts;
        capped.kv_budget_tokens = 256; // < sum of per-request demand
        mixed.push_back(runConfig(model, fmt, "mixed-budget",
                                  mixedWorkload(requests), capped));
    }

    // Bursty mixed-priority workload at batch 8 under a tight budget:
    // over-admission + preemption ("bursty") vs PR4's reject-only
    // admission ("bursty-reject") over the SAME requests and budget.
    // Token streams are verified identical — preempt-and-requeue is a
    // scheduling decision, never a numerics decision — before any
    // number is emitted. Quick mode keeps one format so the CI gate
    // exercises the preemption path (and its ttft_p99 metric) on
    // every PR.
    std::vector<RunResult> bursty;
    const std::vector<std::string> bursty_formats =
        quick ? std::vector<std::string>{"MXFP4+"} : formats;
    const size_t bursty_requests = 12;
    const size_t bursty_budget_tokens = 256;
    const double bursty_over_admission = 1.5;
    const double bursty_aging_rate = 0.25;
    for (const auto &fmt : bursty_formats) {
        std::fprintf(stderr, "serving %s bursty...\n", fmt.c_str());
        const auto reqs = burstyWorkload(bursty_requests);
        EngineOptions opts;
        opts.max_batch = 8;
        opts.kv_budget_tokens = bursty_budget_tokens;
        opts.aging_rate = bursty_aging_rate;
        opts.over_admission = bursty_over_admission;
        RunResult over = runConfig(model, fmt, "bursty", reqs, opts);
        EngineOptions reject = opts;
        reject.over_admission = 1.0;
        RunResult rej =
            runConfig(model, fmt, "bursty-reject", reqs, reject);
        if (over.streams != rej.streams) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s bursty token streams "
                         "diverge under over-admission — preemption "
                         "must never change numerics\n",
                         fmt.c_str());
            return 1;
        }
        bursty.push_back(std::move(over));
        bursty.push_back(std::move(rej));
    }

    // Overload workload at batch 4: an admission burst a bounded queue
    // and per-request deadlines must triage. Runs on the virtual step
    // clock, so the completed/shed/timed-out split is deterministic —
    // the new lifecycle counters in each row carry the goodput story.
    std::vector<RunResult> overload;
    const std::vector<std::string> overload_formats =
        quick ? std::vector<std::string>{"MXFP4+"} : formats;
    const size_t overload_requests = 18;
    const size_t overload_queue_cap = 12;
    const double overload_deadline_ms = 48.0;
    for (const auto &fmt : overload_formats) {
        std::fprintf(stderr, "serving %s overload...\n", fmt.c_str());
        EngineOptions opts;
        opts.max_batch = 4;
        opts.queue_cap = overload_queue_cap;
        opts.shed_policy = ShedPolicy::kLowestPriority;
        opts.deadline_ms = overload_deadline_ms;
        opts.step_time_ms = 1.0; // virtual clock: deterministic triage
        opts.aging_rate = 0.25;
        overload.push_back(
            runConfig(model, fmt, "overload",
                      overloadWorkload(overload_requests), opts));
    }

    // Shared-prefix workload at batch 8: prefix cache on vs off over
    // the SAME requests, token streams verified bit-identical. Quick
    // mode keeps one format so the CI gate exercises the sharing path
    // (and its ttft/kv_bytes metrics) on every PR.
    std::vector<RunResult> shared;
    const std::vector<std::string> shared_formats =
        quick ? std::vector<std::string>{"MXFP4+"} : formats;
    const size_t shared_len = 256;
    const size_t tail_len = 32;
    const size_t shared_new = 16;
    const size_t shared_cache_tokens = 1024;
    const size_t shared_budget_tokens = 512;
    for (const auto &fmt : shared_formats) {
        std::fprintf(stderr, "serving %s shared-prefix...\n",
                     fmt.c_str());
        const auto reqs = sharedPrefixWorkload(requests, shared_len,
                                               tail_len, shared_new);
        EngineOptions opts;
        opts.max_batch = 8;
        opts.prefix_cache_tokens = shared_cache_tokens;
        RunResult cached =
            runConfig(model, fmt, "shared-prefix", reqs, opts);
        EngineOptions off = opts;
        off.prefix_cache_tokens = 0;
        RunResult plain =
            runConfig(model, fmt, "shared-prefix-nocache", reqs, off);
        if (cached.streams != plain.streams) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s shared-prefix token "
                         "streams diverge with the prefix cache on — "
                         "sharing must never change numerics\n",
                         fmt.c_str());
            return 1;
        }

        // Compressed frozen pages vs the plain pool at the SAME
        // kv_budget_tokens, both warmed so the shared head is already
        // published (and compressed) when the burst arrives. Streams
        // must stay bit-identical, residency must drop, and the burst
        // must admit strictly further before the first deferral —
        // compression is a capacity decision, never a numerics one.
        EngineOptions budgeted = opts;
        budgeted.kv_budget_tokens = shared_budget_tokens;
        RunResult base = runWarmedBudgetConfig(
            model, fmt, "shared-prefix-budget", reqs, budgeted);
        EngineOptions comp_opts = budgeted;
        comp_opts.compress_frozen_pages = true;
        RunResult comp = runWarmedBudgetConfig(
            model, fmt, "shared-prefix-compressed", reqs, comp_opts);
        if (comp.streams != base.streams ||
            base.streams != cached.streams) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s shared-prefix token "
                         "streams diverge with compressed frozen pages "
                         "— the codec must be bit-lossless\n",
                         fmt.c_str());
            return 1;
        }
        if (comp.admitted_before_first_defer <=
                base.admitted_before_first_defer ||
            comp.kv_bytes_peak >= base.kv_bytes_peak) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s shared-prefix-"
                         "compressed shows no capacity win at equal "
                         "budget (admitted %zu vs %zu before first "
                         "deferral, kv_bytes_peak %zu vs %zu)\n",
                         fmt.c_str(), comp.admitted_before_first_defer,
                         base.admitted_before_first_defer,
                         comp.kv_bytes_peak, base.kv_bytes_peak);
            return 1;
        }
        std::fprintf(stderr,
                     "  %s shared-prefix-compressed: ratio %.2fx, "
                     "admitted %zu vs %zu before first deferral\n",
                     fmt.c_str(), comp.compressed_ratio,
                     comp.admitted_before_first_defer,
                     base.admitted_before_first_defer);
        shared.push_back(std::move(cached));
        shared.push_back(std::move(plain));
        shared.push_back(std::move(base));
        shared.push_back(std::move(comp));
    }

    // Sharded fleet: the SAME multi-family workload served five ways —
    // one big single engine ("sharded-ref", the golden reference), a
    // 4-shard fleet routed by prefix affinity ("sharded-affinity"), the
    // same fleet routed round-robin ("sharded-roundrobin"), the
    // affinity fleet with one shard crashed mid-run and its in-flight
    // requests failed over to the survivors ("sharded-failover"), and
    // the live ShardedFrontEnd with real shard threads and racing
    // producers ("sharded-async"). The serial rows run on the virtual
    // step clock, so they are deterministic and tools/check_bench.py
    // gates ttft_p50_ms and kv_bytes_peak — the affinity-vs-round-robin
    // delta (one physical prefix copy per family vs one per family per
    // shard) is the router's headline number — plus, for the failover
    // row, ttft_p99_ms (the rerouted tail) and goodput_ok_fraction (a
    // crash must never lose a request). Every variant's token streams
    // are verified bit-identical to the reference before anything is
    // emitted: placement — and re-placement after a crash — is a
    // throughput decision, never a numerics decision.
    std::vector<RunResult> sharded;
    const std::vector<std::string> sharded_formats =
        quick ? std::vector<std::string>{"MXFP4+"} : formats;
    const size_t sharded_families = 4;
    const size_t sharded_per = 6;
    const size_t sharded_shared_len = 128;
    const size_t sharded_tail_len = 16;
    const size_t sharded_new = 12;
    const size_t sharded_shards = 4;
    const size_t sharded_cache_tokens = 1024;
    // Failover row geometry: the crash fires at a tick chosen to land
    // mid-flight (the victim's 6-request family takes ~30+ virtual ms
    // to serve, so tick 10 catches it between prefill and decode), and
    // the victim is whichever shard affinity gave request 0's family —
    // guaranteed to own in-flight work, whatever the per-format page
    // geometry hashes to. The sim FATALs if the kill fires on a
    // drained shard, so workload drift cannot silently degrade the
    // row into plain sharding.
    const size_t sharded_kill_tick = 10;
    for (const auto &fmt : sharded_formats) {
        std::fprintf(stderr, "serving %s sharded...\n", fmt.c_str());
        const auto reqs =
            shardedWorkload(sharded_families, sharded_per,
                            sharded_shared_len, sharded_tail_len,
                            sharded_new);
        EngineOptions opts;
        opts.max_batch = 4;
        opts.prefix_cache_tokens = sharded_cache_tokens;
        opts.step_time_ms = 1.0; // virtual clock: deterministic rows

        RunResult ref =
            runConfig(model, fmt, "sharded-ref", reqs, opts);

        const QuantConfig qc = QuantConfig::fromFormat(fmt);
        const size_t pt = KvCache::pageTokensFor(qc.attention.get());
        RouterOptions router;
        router.num_shards = sharded_shards;
        std::vector<size_t> affinity(reqs.size());
        std::vector<size_t> round_robin(reqs.size());
        for (size_t i = 0; i < reqs.size(); ++i) {
            affinity[i] = affinityShard(reqs[i].prompt, pt,
                                        router.affinity_pages,
                                        sharded_shards);
            round_robin[i] = i % sharded_shards;
        }
        RunResult aff = runShardedSim(model, fmt, "sharded-affinity",
                                      reqs, affinity, sharded_shards,
                                      opts);
        RunResult rr = runShardedSim(model, fmt, "sharded-roundrobin",
                                     reqs, round_robin, sharded_shards,
                                     opts);
        RunResult failover = runShardedFailoverSim(
            model, fmt, "sharded-failover", reqs, affinity,
            sharded_shards, affinity[0], sharded_kill_tick, opts);
        RunResult live = runShardedAsync(model, fmt, "sharded-async",
                                         reqs, router, opts);
        // The affinity fleet again with frozen-page compression armed
        // on every shard: per-family prefix copies shrink to their
        // stream size, so the fleet's resident peak drops while the
        // streams stay bit-identical to the single-engine reference.
        EngineOptions comp_opts = opts;
        comp_opts.compress_frozen_pages = true;
        RunResult comp = runShardedSim(model, fmt, "sharded-compressed",
                                       reqs, affinity, sharded_shards,
                                       comp_opts);
        if (aff.streams != ref.streams || rr.streams != ref.streams ||
            failover.streams != ref.streams ||
            live.streams != ref.streams ||
            comp.streams != ref.streams) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s sharded token streams "
                         "diverge from the single-engine reference — "
                         "sharding must never change numerics\n",
                         fmt.c_str());
            return 1;
        }
        if (comp.kv_bytes_peak >= aff.kv_bytes_peak) {
            std::fprintf(stderr,
                         "bench_serving: FATAL %s sharded-compressed "
                         "resident peak %zu did not drop below the "
                         "uncompressed affinity fleet's %zu\n",
                         fmt.c_str(), comp.kv_bytes_peak,
                         aff.kv_bytes_peak);
            return 1;
        }
        std::fprintf(stderr,
                     "  %s sharded-compressed: ratio %.2fx, "
                     "kv_bytes_peak %zu vs %zu uncompressed\n",
                     fmt.c_str(), comp.compressed_ratio,
                     comp.kv_bytes_peak, aff.kv_bytes_peak);
        sharded.push_back(std::move(ref));
        sharded.push_back(std::move(aff));
        sharded.push_back(std::move(rr));
        sharded.push_back(std::move(failover));
        sharded.push_back(std::move(live));
        sharded.push_back(std::move(comp));
    }

    FILE *out = stdout;
    if (out_path != nullptr) {
        out = std::fopen(out_path, "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", out_path);
            return 1;
        }
    }

    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"bench_serving\",\n");
    std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(out, "  \"model\": \"%s\",\n", cfg.name.c_str());
    std::fprintf(out, "  \"kv_page_tokens\": %zu,\n",
                 KvCache::pageTokensFor(nullptr));
    std::fprintf(out,
                 "  \"workload\": {\"requests\": %zu, \"prompt_tokens\": "
                 "%zu, \"new_tokens_per_request\": %zu, \"sampling\": "
                 "\"greedy\"},\n",
                 requests, prompt_len, new_tokens);
    std::fprintf(out,
                 "  \"poisson_workload\": {\"requests\": %zu, "
                 "\"mean_interarrival_ms\": %.1f, \"offered_rps\": %.1f, "
                 "\"seed\": %zu, \"deadline_ms\": %.1f, "
                 "\"step_time_ms\": 1.0, \"max_batch\": %zu, "
                 "\"tokens_match_threaded\": true, "
                 "\"tokens_match_async\": true},\n",
                 poisson_requests, poisson_interarrival_ms, poisson_rps,
                 static_cast<size_t>(poisson_seed), poisson_deadline_ms,
                 poisson_batch);
    std::fprintf(out, "  \"poisson\": [\n");
    for (size_t i = 0; i < poisson.size(); ++i)
        printResult(out, poisson[i], i + 1 == poisson.size());
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"configs\": [\n");
    for (size_t i = 0; i < results.size(); ++i)
        printResult(out, results[i], i + 1 == results.size());
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"mixed\": [\n");
    for (size_t i = 0; i < mixed.size(); ++i)
        printResult(out, mixed[i], i + 1 == mixed.size());
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"bursty_workload\": {\"requests\": %zu, "
                 "\"kv_budget_tokens\": %zu, \"over_admission\": %.1f, "
                 "\"aging_rate\": %.2f, \"tokens_match_reject\": "
                 "true},\n",
                 bursty_requests, bursty_budget_tokens,
                 bursty_over_admission, bursty_aging_rate);
    std::fprintf(out, "  \"bursty\": [\n");
    for (size_t i = 0; i < bursty.size(); ++i)
        printResult(out, bursty[i], i + 1 == bursty.size());
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"overload_workload\": {\"requests\": %zu, "
                 "\"queue_cap\": %zu, \"deadline_ms\": %.1f, "
                 "\"shed_policy\": \"lowest-priority\", "
                 "\"step_time_ms\": 1.0},\n",
                 overload_requests, overload_queue_cap,
                 overload_deadline_ms);
    std::fprintf(out, "  \"overload\": [\n");
    for (size_t i = 0; i < overload.size(); ++i)
        printResult(out, overload[i], i + 1 == overload.size());
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"shared_prefix\": {\"requests\": %zu, "
                 "\"shared_tokens\": %zu, \"tail_tokens\": %zu, "
                 "\"new_tokens_per_request\": %zu, "
                 "\"prefix_cache_tokens\": %zu, "
                 "\"budget_kv_tokens\": %zu, "
                 "\"tokens_match_nocache\": true, "
                 "\"tokens_match_compressed\": true},\n",
                 requests, shared_len, tail_len, shared_new,
                 shared_cache_tokens, shared_budget_tokens);
    std::fprintf(out, "  \"shared\": [\n");
    for (size_t i = 0; i < shared.size(); ++i)
        printResult(out, shared[i], i + 1 == shared.size());
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"sharded_workload\": {\"families\": %zu, "
                 "\"requests_per_family\": %zu, \"shared_tokens\": %zu, "
                 "\"tail_tokens\": %zu, \"new_tokens_per_request\": %zu, "
                 "\"num_shards\": %zu, \"prefix_cache_tokens\": %zu, "
                 "\"step_time_ms\": 1.0, \"max_batch_per_shard\": 4, "
                 "\"failover_kill_tick\": %zu, "
                 "\"failover_kill_shard\": \"affinity-of-request-0\", "
                 "\"tokens_match_reference\": true, "
                 "\"tokens_match_failover\": true, "
                 "\"tokens_match_compressed\": true},\n",
                 sharded_families, sharded_per, sharded_shared_len,
                 sharded_tail_len, sharded_new, sharded_shards,
                 sharded_cache_tokens, sharded_kill_tick);
    std::fprintf(out, "  \"sharded\": [\n");
    for (size_t i = 0; i < sharded.size(); ++i)
        printResult(out, sharded[i], i + 1 == sharded.size());
    std::fprintf(out, "  ]\n");
    std::fprintf(out, "}\n");
    if (out != stdout)
        std::fclose(out);
    return 0;
}
