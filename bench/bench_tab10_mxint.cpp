/**
 * @file
 * Table 10: the MX+ idea applied to the integer microscaling formats:
 * MXINT8+ vs MXINT8 and the hypothetical MXINT4+ vs MXINT4. Expected
 * shape: the extra fraction bit barely moves MXINT8 (already 7 fraction
 * bits) but clearly helps MXINT4.
 */

#include <cstdio>

#include "bench_util.h"
#include "model/eval.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 10: perplexity of integer microscaling formats");
    bench::row("model", {"MXINT8+", "MXINT8", "MXINT4+", "MXINT4"});

    const size_t seq = bench::fullRuns() ? 1024 : 384;
    const size_t n_seq = bench::fullRuns() ? 4 : 3;

    for (const auto &cfg : {simLlama31_8b(), simMistral7b()}) {
        const Transformer model(cfg);
        const Dataset data =
            makeTeacherDataset(model, "wiki-sim", n_seq, seq, 1.0, 42);
        std::vector<std::string> cells;
        for (const char *fmt :
             {"MXINT8+", "MXINT8", "MXINT4+", "MXINT4"}) {
            cells.push_back(bench::num(
                perplexity(model, data, QuantConfig::fromFormat(fmt)),
                3));
        }
        bench::row(cfg.name, cells);
    }
    std::printf("\n(paper shape: MXINT8+ ~= MXINT8; MXINT4+ clearly "
                "below MXINT4)\n");
    return 0;
}
