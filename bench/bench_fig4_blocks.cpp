/**
 * @file
 * Figure 4: channel-concentrated activation outliers and two sampled MX
 * blocks. Prints (a) per-channel magnitude statistics of a sampled
 * attention input (the heatmap's content) and (b) the paper's two sample
 * blocks in BF16 / MXFP4 / MXFP6 side by side.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "model/eval.h"
#include "mx/mx_quantizer.h"

using namespace mxplus;

int
main()
{
    bench::header("Figure 4(a): channel magnitude profile of a sampled "
                  "attention input");
    const ModelConfig cfg = simLlama31_8b();
    const Transformer model(cfg);
    Rng rng(7);
    const auto tokens = model.sample(rng, 96, 1.0);

    std::map<std::string, Matrix> captured;
    model.setCaptureHook([&](const std::string &name, const Matrix &m) {
        captured.emplace(name, m);
    });
    model.forward(tokens, QuantConfig::bf16Baseline());
    model.clearCaptureHook();

    const Matrix &acts = captured.at("L1.attn_in");
    std::vector<double> chan_amax(acts.cols(), 0.0);
    for (size_t r = 0; r < acts.rows(); ++r) {
        for (size_t c = 0; c < acts.cols(); ++c)
            chan_amax[c] = std::max(
                chan_amax[c],
                static_cast<double>(std::fabs(acts.at(r, c))));
    }
    std::vector<size_t> order(acts.cols());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return chan_amax[a] > chan_amax[b];
    });
    std::printf("top-8 channels by |activation| (outlier channels):\n");
    for (size_t i = 0; i < 8; ++i) {
        std::printf("  channel %3zu  amax = %8.3f\n", order[i],
                    chan_amax[order[i]]);
    }
    std::printf("median channel amax = %.3f (outliers are concentrated "
                "in a few channels, as in the paper's heatmap)\n",
                chan_amax[order[order.size() / 2]]);

    bench::header("Figure 4(b): the paper's sampled blocks under MXFP4 "
                  "and MXFP6");
    const std::vector<std::vector<float>> blocks = {
        {-0.27f, -0.19f, 0.99f, -0.20f, -9.84f, -0.39f},
        {-0.27f, 0.04f, -1.02f, 0.18f, -0.45f, -0.20f},
    };
    const MxQuantizer fp4(ElementFormat::E2M1, MxMode::Standard);
    const MxQuantizer fp6(ElementFormat::E2M3, MxMode::Standard);
    const MxQuantizer fp4p(ElementFormat::E2M1, MxMode::Plus);
    for (const auto &blk : blocks) {
        std::vector<float> q4(blk.size());
        std::vector<float> q6(blk.size());
        std::vector<float> q4p(blk.size());
        fp4.fakeQuantizeBlock(blk.data(), q4.data(),
                              static_cast<int>(blk.size()));
        fp6.fakeQuantizeBlock(blk.data(), q6.data(),
                              static_cast<int>(blk.size()));
        fp4p.fakeQuantizeBlock(blk.data(), q4p.data(),
                               static_cast<int>(blk.size()));
        auto print_row = [](const char *name,
                            const std::vector<float> &v) {
            std::printf("  %-8s", name);
            for (float x : v)
                std::printf("%8.2f", x);
            std::printf("\n");
        };
        print_row("BF16", blk);
        print_row("MXFP6", q6);
        print_row("MXFP4", q4);
        print_row("MXFP4+", q4p);
        std::printf("\n");
    }
    return 0;
}
