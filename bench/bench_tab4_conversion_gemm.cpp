/**
 * @file
 * Table 4: matrix multiplication time with BF16 activations and MXFP4+ /
 * MXFP4++ weights on a GPU WITHOUT native MX support (convert-to-BF16
 * Triton path), normalized to the MXFP4-weight case. Expected shape:
 * ~1.08x overhead at small M (conversion-bound), shrinking to ~1.01-1.05x
 * at large M (MMA-bound); MXFP4++ slightly above MXFP4+.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpusim/gemm_timing.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 4: BF16-activation GEMM time, normalized to "
                  "MXFP4 weights (A6000-class, convert-to-BF16 path)");
    const GpuConfig gpu = GpuConfig::a6000();
    const size_t n = 4096;
    const size_t k = 4096;
    const std::vector<size_t> ms = {8, 16, 32, 1024, 2048, 4096};

    std::vector<std::string> head;
    for (size_t m : ms)
        head.push_back("M=" + std::to_string(m));
    bench::row("weight format", head);

    auto time_for = [&](size_t m, OperandFormat weight) {
        GemmShape s{m, n, k, OperandFormat::BF16, weight,
                    IntegrationPath::ConvertToBf16};
        return gemmTime(gpu, s).total_us;
    };

    std::vector<std::string> plus_cells;
    std::vector<std::string> pp_cells;
    for (size_t m : ms) {
        const double base = time_for(m, OperandFormat::MXFP4);
        const double plus = time_for(m, OperandFormat::MXFP4Plus);
        plus_cells.push_back(bench::num(plus / base));
        // MXFP4++ additionally rescales NBMs during conversion: model as
        // the MX+ path with the Table 6 second-max factor on conversion.
        const double pp = base + (plus - base) * 1.35;
        pp_cells.push_back(bench::num(pp / base));
    }
    bench::row("MXFP4+", plus_cells);
    bench::row("MXFP4++", pp_cells);

    std::printf("\n(paper: MXFP4+ 1.08/1.07/1.08/1.04/1.01/1.01; "
                "MXFP4++ 1.08/1.09/1.10/1.04/1.05/1.04 — overhead "
                "pronounced at small M, amortized at large M)\n");
    return 0;
}
