/**
 * @file
 * Figure 11: (a) prefill/decode execution-time breakdown for Llama-2-13B
 * with 4 requests x 1024 input x 64 output tokens under MXFP4, A-MXFP4+
 * (software integration) and MXFP8; (b) execution time normalized to
 * MXFP4 across output lengths. Expected shape: decode dominates and is
 * memory-bound, so A-MXFP4+ is within a few percent of MXFP4 overall
 * while MXFP8 is up to ~1.9x slower; the gap narrows as output length
 * grows.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpusim/llm_timing.h"

using namespace mxplus;

namespace {

ServingConfig
schemeConfig(const std::string &name)
{
    ServingConfig c;
    if (name == "MXFP4") {
        c.act_format = OperandFormat::MXFP4;
        c.weight_format = OperandFormat::MXFP4;
        c.path = IntegrationPath::DirectMx;
    } else if (name == "A-MXFP4+") {
        c.act_format = OperandFormat::MXFP4Plus;
        c.weight_format = OperandFormat::MXFP4;
        c.path = IntegrationPath::MxPlusSoftware;
    } else { // MXFP8
        c.act_format = OperandFormat::MXFP8;
        c.weight_format = OperandFormat::MXFP8;
        c.path = IntegrationPath::DirectMx;
    }
    return c;
}

} // namespace

int
main()
{
    const GpuConfig gpu = GpuConfig::rtx5090();
    const LlmDims model = LlmDims::llama2_13b();

    bench::header("Figure 11(a): execution time breakdown (ms), "
                  "Llama-2-13B, 4 x 1024 in / 64 out");
    bench::row("scheme", {"prefill", "decode", "total", "prefill%"});
    for (const std::string name : {"MXFP4", "A-MXFP4+", "MXFP8"}) {
        ServingConfig c = schemeConfig(name);
        c.batch = 4;
        c.input_tokens = 1024;
        c.output_tokens = 64;
        const ServingTime t = servingTime(gpu, model, c);
        bench::row(name, {bench::num(t.prefill_ms, 1),
                          bench::num(t.decode_ms, 1),
                          bench::num(t.total(), 1),
                          bench::num(100.0 * t.prefill_ms / t.total(),
                                     1)});
    }

    bench::header("Figure 11(b): execution time normalized to MXFP4 "
                  "across output lengths");
    bench::row("scheme", {"out=32", "out=64", "out=128", "out=256"});
    for (const std::string name : {"A-MXFP4+", "MXFP8"}) {
        std::vector<std::string> cells;
        for (size_t out : {32, 64, 128, 256}) {
            ServingConfig base = schemeConfig("MXFP4");
            ServingConfig c = schemeConfig(name);
            base.output_tokens = c.output_tokens = out;
            base.batch = c.batch = 4;
            base.input_tokens = c.input_tokens = 1024;
            const double t0 = servingTime(gpu, model, base).total();
            const double t1 = servingTime(gpu, model, c).total();
            cells.push_back(bench::num(t1 / t0));
        }
        bench::row(name, cells);
    }
    std::printf("\n(paper: A-MXFP4+ up to 1.13x, MXFP8 up to 1.85x vs "
                "MXFP4; both gaps shrink as decode dominates)\n");
    return 0;
}
