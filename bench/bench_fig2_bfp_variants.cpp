/**
 * @file
 * Figure 2: perplexity of the BF16 baseline vs MSFP, SMX and MX formats
 * at high (H), moderate (M) and low (L) bit widths across models.
 * Expected shape: MX <= SMX <= MSFP at each width; all H formats close to
 * the baseline, L formats diverging with MXFP4 the least-bad of the three.
 */

#include <cstdio>

#include "bench_util.h"
#include "model/eval.h"

using namespace mxplus;

int
main()
{
    bench::header("Figure 2: perplexity across industry BFP variants");
    const size_t seq = bench::fullRuns() ? 1024 : 384;
    const size_t n_seq = bench::fullRuns() ? 4 : 3;

    // Width classes from the paper: L in [4, 4.5], M in [6, 6.5],
    // H in [8.25, 9] average bits per element.
    const std::vector<std::pair<std::string, std::string>> columns = {
        {"BF16", "B"},
        {"MXFP8", "H"}, {"SMX9", "H"}, {"MSFP16", "H"},
        {"MXFP6", "M"}, {"SMX6", "M"}, {"MSFP14", "M"},
        {"MXFP4", "L"}, {"SMX4", "L"}, {"MSFP12", "L"},
    };

    std::vector<std::string> head_cells;
    for (const auto &[fmt, cls] : columns)
        head_cells.push_back(fmt + "(" + cls + ")");
    bench::row("model", head_cells);

    const auto models = bench::fullRuns()
        ? std::vector<ModelConfig>{simOpt66b(), simLlama31_8b(),
                                   simLlama31_70b(), simMistral7b()}
        : std::vector<ModelConfig>{simLlama31_8b(), simMistral7b()};

    for (const auto &cfg : models) {
        const Transformer model(cfg);
        const Dataset data =
            makeTeacherDataset(model, "wiki-sim", n_seq, seq, 1.0, 42);
        std::vector<std::string> cells;
        for (const auto &[fmt, cls] : columns) {
            const double ppl =
                perplexity(model, data, QuantConfig::fromFormat(fmt));
            cells.push_back(bench::num(ppl));
        }
        bench::row(cfg.name, cells);
    }
    std::printf("\n(paper shape: MX best in class; L-width formats "
                "diverge, MSFP12/SMX4 far worse than MXFP4)\n");
    return 0;
}
