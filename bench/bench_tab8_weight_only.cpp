/**
 * @file
 * Table 8: weight-focused quantization. Left half: BF16 activations with
 * AWQ-scaled 4-bit weights (INT4 vs MXFP4 vs MXFP4+). Right half: MXFP8
 * activations with MXFP4 vs MXFP4+ weights (A8W4). Expected shape: AWQ +
 * MXFP4+ beats AWQ + INT4 and AWQ + MXFP4 (scaling makes important
 * weights the block max); MXFP4+ weights also win under MXFP8
 * activations.
 */

#include <cstdio>

#include "baselines/scheme_factory.h"
#include "bench_util.h"
#include "model/eval.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 8: weight-only and A8W4 perplexity");
    const size_t seq = bench::fullRuns() ? 1024 : 320;
    const size_t n_seq = bench::fullRuns() ? 4 : 2;

    const auto models =
        std::vector<ModelConfig>{simLlama31_8b(), simMistral7b()};
    bench::row("scheme", {"llama-3.1-8b", "mistral-7b"});

    struct RowSpec
    {
        std::string label;
        std::string scheme; ///< empty = format pair
        std::string act;
        std::string weight;
    };
    const std::vector<RowSpec> rows = {
        {"AWQ A16 W-INT4", "AWQ-INT4", "", ""},
        {"AWQ A16 W-MXFP4", "AWQ-MXFP4", "", ""},
        {"AWQ A16 W-MXFP4+", "AWQ-MXFP4+", "", ""},
        {"A-MXFP8 W-MXFP4", "", "MXFP8", "MXFP4"},
        {"A-MXFP8 W-MXFP4+", "", "MXFP8", "MXFP4+"},
    };

    std::vector<Transformer> xs;
    std::vector<Dataset> data;
    std::vector<std::vector<int>> calib;
    for (const auto &cfg : models) {
        xs.emplace_back(cfg);
        data.push_back(makeTeacherDataset(xs.back(), "wiki-sim", n_seq,
                                          seq, 1.0, 42));
        Rng rng(56);
        calib.push_back(xs.back().sample(rng, 128, 1.0));
    }

    for (const auto &spec : rows) {
        std::vector<std::string> cells;
        for (size_t mi = 0; mi < xs.size(); ++mi) {
            QuantConfig qc;
            if (!spec.scheme.empty()) {
                qc = QuantConfig::bf16Baseline();
                qc.quantize_head = false;
                qc.scheme_lookup = calibrateSchemes(
                    xs[mi], calib[mi],
                    [&] { return makeSchemeByName(spec.scheme); });
            } else {
                qc = QuantConfig::fromFormats(spec.act, spec.weight);
                qc.quantize_head = false;
            }
            cells.push_back(
                bench::num(perplexity(xs[mi], data[mi], qc)));
        }
        bench::row(spec.label, cells);
    }
    std::printf("\n(paper shape: MXFP4+ weights beat INT4/MXFP4 under "
                "both AWQ-BF16 and MXFP8 activations)\n");
    return 0;
}
