/**
 * @file
 * Table 9: top-1 accuracy of vision models (the DeiT / ResNet stand-ins
 * trained in-repo on the synthetic image dataset) under direct-cast
 * MXFP4 / MXFP4+ inference and quantization-aware fine-tuning. Expected
 * shape: MXFP4+ above MXFP4 in direct-cast; QA fine-tuning narrows the
 * gap for both.
 */

#include <cstdio>

#include "bench_util.h"
#include "vision/experiment.h"

using namespace mxplus;

int
main()
{
    bench::header("Table 9: vision top-1 accuracy (%)");
    const size_t n_train = bench::fullRuns() ? 4096 : 2048;
    const size_t n_test = bench::fullRuns() ? 1024 : 512;
    const VisionData data = makeVisionData(n_train, n_test, 2024);

    VisionTrainSpec spec;
    spec.epochs = bench::fullRuns() ? 30 : 15;
    spec.finetune_epochs = bench::fullRuns() ? 10 : 5;

    bench::row("model/format",
               {"FP32", "direct-cast", "QA-finetune"});
    for (const std::string family : {"patch", "cnn"}) {
        const auto results = runVisionExperiment(
            family, {"MXFP4", "MXFP4+"}, data, spec, 31337);
        for (const auto &r : results) {
            bench::row(r.model + "/" + r.format,
                       {bench::num(r.fp32_acc, 2),
                        bench::num(r.direct_cast_acc, 2),
                        bench::num(r.qa_finetune_acc, 2)});
        }
    }
    std::printf("\n(paper shape: MXFP4+ > MXFP4 in direct-cast; QA "
                "fine-tuning narrows the gap; 'patch' stands in for the "
                "DeiT family and 'cnn' for ResNet)\n");
    return 0;
}
