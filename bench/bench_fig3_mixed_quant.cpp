/**
 * @file
 * Figure 3: perplexity when only activations (A) or only weights (W) are
 * quantized to MXFP4. Expected shape: W-only quantization is nearly free;
 * A-only quantization causes most of the full-MXFP4 collapse.
 */

#include <cstdio>

#include "bench_util.h"
#include "model/eval.h"

using namespace mxplus;

int
main()
{
    bench::header("Figure 3: mixed BF16 / MXFP4 quantization");
    const size_t seq = bench::fullRuns() ? 1024 : 384;
    const size_t n_seq = bench::fullRuns() ? 4 : 3;

    bench::row("model", {"Base(BF16)", "A-BF16,W-MXFP4",
                         "A-MXFP4,W-BF16", "MXFP4"});

    const auto models = bench::fullRuns()
        ? std::vector<ModelConfig>{simOpt66b(), simLlama31_8b(),
                                   simLlama31_70b(), simMistral7b()}
        : std::vector<ModelConfig>{simLlama31_8b(), simMistral7b()};

    for (const auto &cfg : models) {
        const Transformer model(cfg);
        const Dataset data =
            makeTeacherDataset(model, "wiki-sim", n_seq, seq, 1.0, 42);

        // A-BF16/W-MXFP4: attention operands are activations -> BF16.
        QuantConfig w_only = QuantConfig::fromFormats("BF16", "MXFP4");
        // A-MXFP4/W-BF16: attention operands follow activations.
        QuantConfig a_only = QuantConfig::fromFormats("MXFP4", "BF16");

        bench::row(cfg.name, {
            bench::num(perplexity(model, data,
                                  QuantConfig::bf16Baseline())),
            bench::num(perplexity(model, data, w_only)),
            bench::num(perplexity(model, data, a_only)),
            bench::num(perplexity(model, data,
                                  QuantConfig::fromFormat("MXFP4"))),
        });
    }
    std::printf("\n(paper shape: quantizing weights alone is nearly "
                "free; activations alone reproduce most of the MXFP4 "
                "degradation)\n");
    return 0;
}
